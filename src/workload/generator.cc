#include "src/workload/generator.h"

#include <cassert>

namespace soap::workload {

WorkloadGenerator::WorkloadGenerator(const TemplateCatalog* catalog,
                                     uint64_t seed)
    : catalog_(catalog),
      rng_(seed),
      zipf_(catalog->size(), catalog->spec().zipf_s) {}

uint32_t WorkloadGenerator::SampleTemplate() {
  if (catalog_->spec().distribution == PopularityDist::kZipf) {
    return static_cast<uint32_t>(zipf_.Sample(rng_));
  }
  return static_cast<uint32_t>(rng_.NextUint64(catalog_->size()));
}

std::unique_ptr<txn::Transaction> WorkloadGenerator::GenerateOne() {
  const uint32_t tmpl = SampleTemplate();
  ++generated_;
  return catalog_->Instantiate(tmpl,
                               static_cast<int64_t>(rng_.Next() >> 32));
}

std::vector<std::unique_ptr<txn::Transaction>>
WorkloadGenerator::GenerateInterval(double mean_arrivals) {
  const int64_t count = rng_.NextPoisson(mean_arrivals);
  std::vector<std::unique_ptr<txn::Transaction>> batch;
  batch.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) batch.push_back(GenerateOne());
  return batch;
}

double WorkloadGenerator::ExpectedInitialCost(
    const TemplateCatalog& catalog, const CapacityModel& capacity) {
  const auto cc = static_cast<double>(capacity.collocated_cost);
  const auto dc = static_cast<double>(capacity.distributed_cost);
  if (catalog.spec().distribution == PopularityDist::kUniform) {
    const double frac = static_cast<double>(catalog.distributed_count()) /
                        static_cast<double>(catalog.size());
    return frac * dc + (1.0 - frac) * cc;
  }
  // Zipf: weight each template by its exact popularity.
  ZipfSampler sampler(catalog.size(), catalog.spec().zipf_s);
  double cost = 0.0;
  for (uint32_t t = 0; t < catalog.size(); ++t) {
    const double p = sampler.Pmf(t);
    cost += p * (catalog.at(t).initially_distributed ? dc : cc);
  }
  return cost;
}

double WorkloadGenerator::CalibrateArrivalRate(
    const TemplateCatalog& catalog, const CapacityModel& capacity,
    double utilization) {
  assert(utilization > 0.0);
  const double mean_cost_us = ExpectedInitialCost(catalog, capacity);
  // One second of virtual time provides total_workers worker-seconds.
  const double capacity_txn_per_s =
      static_cast<double>(capacity.total_workers) * 1e6 / mean_cost_us;
  return utilization * capacity_txn_per_s;
}

}  // namespace soap::workload
