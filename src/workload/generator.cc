#include "src/workload/generator.h"

#include <algorithm>
#include <cassert>

namespace soap::workload {

WorkloadGenerator::WorkloadGenerator(const TemplateCatalog* catalog,
                                     uint64_t seed)
    : catalog_(catalog),
      rng_(seed),
      zipf_(catalog->size(), catalog->spec().zipf_s) {
  phase_zipf_.reserve(catalog->spec().phases.size());
  for (const DriftPhase& ph : catalog->spec().phases) {
    phase_zipf_.emplace_back(catalog->size(), ph.zipf_s);
  }
}

uint32_t WorkloadGenerator::SampleTemplate() {
  if (catalog_->spec().distribution == PopularityDist::kZipf) {
    return static_cast<uint32_t>(zipf_.Sample(rng_));
  }
  return static_cast<uint32_t>(rng_.NextUint64(catalog_->size()));
}

std::unique_ptr<txn::Transaction> WorkloadGenerator::GenerateOne() {
  return GenerateOneInPhase(nullptr, -1);
}

std::unique_ptr<txn::Transaction> WorkloadGenerator::GenerateOne(
    uint32_t interval) {
  const int idx = catalog_->spec().PhaseIndexAt(interval);
  return GenerateOneInPhase(catalog_->spec().PhaseAt(interval), idx);
}

std::unique_ptr<txn::Transaction> WorkloadGenerator::GenerateOneInPhase(
    const DriftPhase* phase, int phase_index) {
  const auto n = static_cast<uint32_t>(catalog_->size());
  uint32_t tmpl;
  bool paired = false;
  if (phase == nullptr) {
    tmpl = SampleTemplate();
  } else {
    uint32_t rank;
    if (catalog_->spec().distribution == PopularityDist::kZipf) {
      rank = static_cast<uint32_t>(
          phase_zipf_[static_cast<size_t>(phase_index)].Sample(rng_));
    } else {
      rank = static_cast<uint32_t>(rng_.NextUint64(n));
    }
    tmpl = (rank + phase->rotation) % n;
    paired = phase->pair_fraction > 0.0 &&
             rng_.NextBernoulli(phase->pair_fraction);
  }
  ++generated_;
  const auto value = static_cast<int64_t>(rng_.Next() >> 32);
  if (!paired) return catalog_->Instantiate(tmpl, value);
  // Affinity hubs key the partner off the issuing partition (stable under
  // popularity rotation); classic hubs key it off the base template.
  const uint32_t partner =
      phase->pair_hub > 0
          ? (phase->pair_affinity
                 ? (catalog_->at(tmpl).home_partition + 1) %
                       std::min(phase->pair_hub, n)
                 : tmpl % std::min(phase->pair_hub, n))
          : (tmpl + phase->pair_stride) % n;
  if (partner == tmpl) return catalog_->Instantiate(tmpl, value);
  const bool write_borrowed =
      phase->pair_write > 0.0 && rng_.NextBernoulli(phase->pair_write);
  return catalog_->InstantiatePaired(tmpl, partner, value, write_borrowed);
}

std::vector<std::unique_ptr<txn::Transaction>>
WorkloadGenerator::GenerateInterval(double mean_arrivals) {
  const int64_t count = rng_.NextPoisson(mean_arrivals);
  std::vector<std::unique_ptr<txn::Transaction>> batch;
  batch.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) batch.push_back(GenerateOne());
  return batch;
}

std::vector<std::unique_ptr<txn::Transaction>>
WorkloadGenerator::GenerateInterval(double mean_arrivals,
                                    uint32_t interval) {
  const int64_t count = rng_.NextPoisson(mean_arrivals);
  std::vector<std::unique_ptr<txn::Transaction>> batch;
  batch.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    batch.push_back(GenerateOne(interval));
  }
  return batch;
}

double WorkloadGenerator::ExpectedInitialCost(
    const TemplateCatalog& catalog, const CapacityModel& capacity) {
  const auto cc = static_cast<double>(capacity.collocated_cost);
  const auto dc = static_cast<double>(capacity.distributed_cost);
  if (catalog.spec().distribution == PopularityDist::kUniform) {
    const double frac = static_cast<double>(catalog.distributed_count()) /
                        static_cast<double>(catalog.size());
    return frac * dc + (1.0 - frac) * cc;
  }
  // Zipf: weight each template by its exact popularity.
  ZipfSampler sampler(catalog.size(), catalog.spec().zipf_s);
  double cost = 0.0;
  for (uint32_t t = 0; t < catalog.size(); ++t) {
    const double p = sampler.Pmf(t);
    cost += p * (catalog.at(t).initially_distributed ? dc : cc);
  }
  return cost;
}

double WorkloadGenerator::CalibrateArrivalRate(
    const TemplateCatalog& catalog, const CapacityModel& capacity,
    double utilization) {
  assert(utilization > 0.0);
  const double mean_cost_us = ExpectedInitialCost(catalog, capacity);
  // One second of virtual time provides total_workers worker-seconds.
  const double capacity_txn_per_s =
      static_cast<double>(capacity.total_workers) * 1e6 / mean_cost_us;
  return utilization * capacity_txn_per_s;
}

}  // namespace soap::workload
