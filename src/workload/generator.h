// Workload generator: samples template popularity (Zipf rank 0 hottest, or
// uniform), draws Poisson arrival counts per 20-second interval, and
// instantiates transactions. Also provides the load calibration of §4.1:
// given a cluster's capacity, the Poisson mean that produces 65% (LowLoad)
// or 130% (HighLoad) utilisation before repartitioning.

#ifndef SOAP_WORKLOAD_GENERATOR_H_
#define SOAP_WORKLOAD_GENERATOR_H_

#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/common/time.h"
#include "src/txn/transaction.h"
#include "src/workload/template_catalog.h"
#include "src/workload/workload_spec.h"

namespace soap::workload {

/// Service-time facts the calibration needs; computed by the repartition
/// cost model from ExecutionCosts (kept abstract here to avoid a layering
/// cycle).
struct CapacityModel {
  /// Node work consumed by one collocated normal transaction.
  Duration collocated_cost = 0;
  /// Node work consumed by one distributed (two-partition) transaction.
  Duration distributed_cost = 0;
  /// Total worker count across the cluster.
  uint32_t total_workers = 0;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const TemplateCatalog* catalog, uint64_t seed);

  /// Draws one template id according to the popularity distribution.
  uint32_t SampleTemplate();

  /// Instantiates one normal transaction.
  std::unique_ptr<txn::Transaction> GenerateOne();

  /// Instantiates one transaction under the drift phase (if any)
  /// governing `interval`. With no phases this takes *exactly* the same
  /// RNG draw path as GenerateOne(), keeping stationary runs
  /// bit-identical.
  std::unique_ptr<txn::Transaction> GenerateOne(uint32_t interval);

  /// Poisson(mean_arrivals) transactions for one interval.
  std::vector<std::unique_ptr<txn::Transaction>> GenerateInterval(
      double mean_arrivals);

  /// Phase-aware variant used by drifting experiments.
  std::vector<std::unique_ptr<txn::Transaction>> GenerateInterval(
      double mean_arrivals, uint32_t interval);

  /// Mean node-work cost of one transaction under the *initial* placement
  /// (frequency-weighted over distributed/collocated templates).
  static double ExpectedInitialCost(const TemplateCatalog& catalog,
                                    const CapacityModel& capacity);

  /// Arrival rate (txn/s) that drives the cluster at `utilization` of its
  /// pre-repartitioning capacity (1.30 = HighLoad, 0.65 = LowLoad).
  static double CalibrateArrivalRate(const TemplateCatalog& catalog,
                                     const CapacityModel& capacity,
                                     double utilization);

  uint64_t generated() const { return generated_; }

 private:
  /// One transaction under `phase` (nullptr = stationary path).
  std::unique_ptr<txn::Transaction> GenerateOneInPhase(const DriftPhase* phase,
                                                       int phase_index);

  const TemplateCatalog* catalog_;
  Rng rng_;
  ZipfSampler zipf_;
  /// Per-phase rank samplers (parallel to spec().phases; Zipf only).
  std::vector<ZipfSampler> phase_zipf_;
  uint64_t generated_ = 0;
};

}  // namespace soap::workload

#endif  // SOAP_WORKLOAD_GENERATOR_H_
