#include "src/workload/history.h"

#include <cassert>

namespace soap::workload {

WorkloadHistory::WorkloadHistory(uint32_t num_templates,
                                 uint32_t window_intervals)
    : num_templates_(num_templates),
      window_intervals_(window_intervals),
      aggregate_(num_templates, 0) {
  assert(window_intervals_ > 0);
  open_.counts.assign(num_templates_, 0);
}

void WorkloadHistory::Record(uint32_t template_id) {
  assert(template_id < num_templates_);
  open_.counts[template_id]++;
  total_recorded_++;
}

void WorkloadHistory::CloseInterval(Duration interval_length) {
  open_.length = interval_length;
  for (uint32_t t = 0; t < num_templates_; ++t) {
    aggregate_[t] += open_.counts[t];
    aggregate_total_ += open_.counts[t];
  }
  aggregate_length_ += interval_length;
  window_.push_back(std::move(open_));
  open_ = IntervalCounts{};
  open_.counts.assign(num_templates_, 0);

  if (window_.size() > window_intervals_) {
    const IntervalCounts& oldest = window_.front();
    for (uint32_t t = 0; t < num_templates_; ++t) {
      aggregate_[t] -= oldest.counts[t];
      aggregate_total_ -= oldest.counts[t];
    }
    aggregate_length_ -= oldest.length;
    window_.pop_front();
  }
}

double WorkloadHistory::FrequencyOf(uint32_t template_id) const {
  assert(template_id < num_templates_);
  if (aggregate_length_ <= 0) return 0.0;
  return static_cast<double>(aggregate_[template_id]) /
         ToSeconds(aggregate_length_);
}

double WorkloadHistory::TotalRate() const {
  if (aggregate_length_ <= 0) return 0.0;
  return static_cast<double>(aggregate_total_) /
         ToSeconds(aggregate_length_);
}

}  // namespace soap::workload
