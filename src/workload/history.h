// Workload history (§2.2): the repartitioner's optimizer "periodically
// extracts the frequency of transactions and their visiting data
// partitions from the workload history". This is that log: per-template
// observation counts over a sliding window of intervals.

#ifndef SOAP_WORKLOAD_HISTORY_H_
#define SOAP_WORKLOAD_HISTORY_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/time.h"

namespace soap::workload {

class WorkloadHistory {
 public:
  /// `num_templates`: catalogue size; `window_intervals`: how many closed
  /// intervals the frequency estimates aggregate over.
  WorkloadHistory(uint32_t num_templates, uint32_t window_intervals);

  /// Records one observed instance of a template in the open interval.
  void Record(uint32_t template_id);

  /// Closes the current interval (called at each interval boundary with
  /// the interval's virtual duration).
  void CloseInterval(Duration interval_length);

  /// Estimated arrival frequency of a template, in transactions per
  /// second, over the window of closed intervals.
  double FrequencyOf(uint32_t template_id) const;

  /// Total observed transactions per second over the window.
  double TotalRate() const;

  /// Number of intervals currently aggregated.
  size_t window_size() const { return window_.size(); }
  uint64_t total_recorded() const { return total_recorded_; }

 private:
  struct IntervalCounts {
    std::vector<uint32_t> counts;
    Duration length = 0;
  };

  uint32_t num_templates_;
  uint32_t window_intervals_;
  IntervalCounts open_;
  std::deque<IntervalCounts> window_;
  /// Aggregated counts over `window_` (kept incrementally).
  std::vector<uint64_t> aggregate_;
  Duration aggregate_length_ = 0;
  uint64_t total_recorded_ = 0;
  uint64_t aggregate_total_ = 0;
};

}  // namespace soap::workload

#endif  // SOAP_WORKLOAD_HISTORY_H_
