#include "src/workload/template_catalog.h"

#include <algorithm>
#include <cassert>

namespace soap::workload {

TemplateCatalog::TemplateCatalog(const WorkloadSpec& spec,
                                 uint32_t num_partitions)
    : spec_(spec), num_partitions_(num_partitions) {
  assert(num_partitions >= 2);
  assert(static_cast<uint64_t>(spec.num_templates) * spec.queries_per_txn <=
         spec.num_keys);
  // The assert compiles out under NDEBUG, but the key-permutation indexing
  // below must never run past the keyspace: clamp queries_per_txn so
  // templates * q <= num_keys holds even for malformed specs.
  if (spec.num_templates > 0 &&
      static_cast<uint64_t>(spec.num_templates) * spec_.queries_per_txn >
          spec.num_keys) {
    spec_.queries_per_txn = static_cast<uint32_t>(
        std::max<uint64_t>(1, spec.num_keys / spec.num_templates));
  }

  Rng rng(spec.seed);

  // Unused keys round-robin over partitions (the implicit default);
  // template keys placed below record an override only when they land off
  // their round-robin partition, keeping the catalogue O(template keys)
  // instead of O(num_keys).

  // Disjoint key sets per template, scattered over the key space.
  std::vector<uint32_t> perm =
      rng.Permutation(static_cast<uint32_t>(spec.num_keys));

  // Exactly round(alpha * templates) templates start distributed, chosen
  // uniformly (popularity-independent, as in the paper's setup where alpha
  // percent of the *transactions* flip from distributed to collocated).
  const auto num_distributed = static_cast<uint32_t>(
      spec.alpha * static_cast<double>(spec.num_templates) + 0.5);
  std::vector<uint32_t> order = rng.Permutation(spec.num_templates);
  std::vector<bool> distributed(spec.num_templates, false);
  for (uint32_t i = 0; i < num_distributed && i < spec.num_templates; ++i) {
    distributed[order[i]] = true;
  }
  distributed_count_ = num_distributed;

  // Home partitions balance the *expected load*, not the template count:
  // under Zipf the hottest template alone carries ~18% of the traffic, so
  // naive round-robin overloads whichever node hosts the head of the
  // distribution. LPT greedy (hottest first onto the least-loaded node)
  // is the skew-aware placement the workload-driven partitioners the
  // paper builds on [Schism, Horticulture] would produce.
  std::vector<double> node_load(num_partitions_, 0.0);
  std::vector<uint32_t> home_of(spec.num_templates, 0);
  {
    ZipfSampler pmf_source(spec.num_templates, spec.zipf_s);
    for (uint32_t t = 0; t < spec.num_templates; ++t) {
      // Template ids are popularity ranks under Zipf; uniform weights
      // degenerate to round-robin.
      const double weight =
          spec.distribution == PopularityDist::kZipf
              ? pmf_source.Pmf(t)
              : 1.0 / static_cast<double>(spec.num_templates);
      uint32_t best = 0;
      for (uint32_t p = 1; p < num_partitions_; ++p) {
        if (node_load[p] < node_load[best]) best = p;
      }
      home_of[t] = best;
      node_load[best] += weight;
    }
  }

  templates_.resize(spec.num_templates);
  template_of_.reserve(static_cast<size_t>(spec.num_templates) *
                       spec_.queries_per_txn);
  const uint32_t q = spec_.queries_per_txn;
  const auto place = [this](storage::TupleKey key, uint32_t partition) {
    if (partition != static_cast<uint32_t>(key % num_partitions_)) {
      initial_override_[key] = partition;
    }
  };
  for (uint32_t t = 0; t < spec.num_templates; ++t) {
    TxnTemplate& tmpl = templates_[t];
    tmpl.id = t;
    tmpl.home_partition = home_of[t];
    tmpl.initially_distributed = distributed[t];
    tmpl.keys.reserve(q);
    tmpl.is_write.reserve(q);
    // Draw the read/write mix per query, then order reads before writes:
    // deferring writes shortens exclusive-lock hold times, the standard
    // client-side statement ordering for contended OLTP transactions.
    uint32_t writes = 0;
    for (uint32_t i = 0; i < q; ++i) {
      if (rng.NextBernoulli(spec.write_fraction)) ++writes;
    }
    for (uint32_t i = 0; i < q; ++i) {
      tmpl.keys.push_back(perm[static_cast<uint64_t>(t) * q + i]);
      tmpl.is_write.push_back(i >= q - writes);
      template_of_[tmpl.keys.back()] = t;
    }
    if (tmpl.initially_distributed) {
      // The last floor(q/2) keys start on the next partition and must be
      // migrated home: a distributed template touches exactly two
      // partitions, matching the paper's Ci vs 2Ci dichotomy.
      tmpl.remote_partition = (tmpl.home_partition + 1) % num_partitions_;
      const uint32_t remote_from = q - q / 2;
      for (uint32_t i = 0; i < q; ++i) {
        const uint32_t p = i < remote_from ? tmpl.home_partition
                                           : tmpl.remote_partition;
        place(tmpl.keys[i], p);
        if (i >= remote_from) tmpl.remote_keys.push_back(tmpl.keys[i]);
      }
    } else {
      for (uint32_t i = 0; i < q; ++i) {
        place(tmpl.keys[i], tmpl.home_partition);
      }
    }
  }
}

uint32_t TemplateCatalog::InitialPartitionOf(storage::TupleKey key) const {
  assert(key < spec_.num_keys);
  auto it = initial_override_.find(key);
  return it != initial_override_.end()
             ? it->second
             : static_cast<uint32_t>(key % num_partitions_);
}

std::unique_ptr<txn::Transaction> TemplateCatalog::Instantiate(
    uint32_t template_id, int64_t write_value) const {
  const TxnTemplate& tmpl = templates_.at(template_id);
  auto t = std::make_unique<txn::Transaction>();
  t->template_id = template_id;
  t->priority = txn::TxnPriority::kNormal;
  t->ops.reserve(tmpl.keys.size());
  for (size_t i = 0; i < tmpl.keys.size(); ++i) {
    txn::Operation op;
    op.kind = tmpl.is_write[i] ? txn::OpKind::kWrite : txn::OpKind::kRead;
    op.key = tmpl.keys[i];
    op.write_value = write_value;
    t->ops.push_back(op);
  }
  return t;
}

std::unique_ptr<txn::Transaction> TemplateCatalog::InstantiatePaired(
    uint32_t base_template, uint32_t partner_template, int64_t write_value,
    bool write_borrowed) const {
  const TxnTemplate& base = templates_.at(base_template);
  const TxnTemplate& partner = templates_.at(partner_template);
  const size_t q = base.keys.size();
  // Borrowed partner accesses default to reads: a transaction reads its
  // partner's data but writes always target its own template's keys.
  // Writes occupy the template's tail positions, so the borrowed keys
  // take the last half of the read positions (up to q/2 of them). With
  // write_borrowed the borrowed positions write the partner keys instead;
  // the position set is unchanged, so every borrower still touches the
  // partner's keys in the same order.
  size_t reads = 0;
  while (reads < q && !base.is_write[reads]) ++reads;
  const size_t borrow = std::min(q / 2, reads);
  const size_t borrow_begin = reads - borrow;
  auto t = std::make_unique<txn::Transaction>();
  t->template_id = base_template;
  t->partner_template = partner_template;
  t->priority = txn::TxnPriority::kNormal;
  t->ops.reserve(q);
  for (size_t i = 0; i < q; ++i) {
    const bool borrowed = i >= borrow_begin && i < reads;
    txn::Operation op;
    op.kind = (borrowed ? write_borrowed : base.is_write[i])
                  ? txn::OpKind::kWrite
                  : txn::OpKind::kRead;
    op.key = borrowed ? partner.keys[(i - borrow_begin) % partner.keys.size()]
                      : base.keys[i];
    op.write_value = write_value;
    t->ops.push_back(op);
  }
  return t;
}

}  // namespace soap::workload
