// The catalogue of distinct transaction templates (the paper's t_i): each
// template owns a fixed set of tuple keys and fixed read/write kinds, and
// is either collocated (all keys on one partition) or distributed (keys on
// two partitions) under the initial placement. Repartitioning collocates
// the distributed ones.

#ifndef SOAP_WORKLOAD_TEMPLATE_CATALOG_H_
#define SOAP_WORKLOAD_TEMPLATE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/storage/tuple.h"
#include "src/txn/transaction.h"
#include "src/workload/workload_spec.h"

namespace soap::workload {

struct TxnTemplate {
  uint32_t id = 0;
  /// The tuple keys this template's queries touch (disjoint across
  /// templates, so the α semantics are exact).
  std::vector<storage::TupleKey> keys;
  /// Per-query kind: true = write (UPDATE), false = read (SELECT).
  std::vector<bool> is_write;
  /// The partition the template's keys live on after repartitioning (and
  /// before it, for collocated templates).
  uint32_t home_partition = 0;
  /// True if the initial placement spreads this template over two
  /// partitions (it will be repartitioned to become collocated).
  bool initially_distributed = false;
  /// The keys that start on the remote partition and must be migrated
  /// home; empty for collocated templates.
  std::vector<storage::TupleKey> remote_keys;
  /// The partition the remote keys start on.
  uint32_t remote_partition = 0;
};

/// Builds and stores all templates plus the initial key->partition
/// placement the cluster is bulk-loaded with.
class TemplateCatalog {
 public:
  TemplateCatalog(const WorkloadSpec& spec, uint32_t num_partitions);

  const WorkloadSpec& spec() const { return spec_; }
  uint32_t num_partitions() const { return num_partitions_; }
  size_t size() const { return templates_.size(); }
  const TxnTemplate& at(uint32_t id) const { return templates_[id]; }
  const std::vector<TxnTemplate>& templates() const { return templates_; }

  /// Initial partition of any key (templates' keys per the scheme above;
  /// unused keys round-robin).
  uint32_t InitialPartitionOf(storage::TupleKey key) const;

  /// Visits every key whose initial partition differs from the round-robin
  /// default `key % num_partitions`, in ascending key order, as
  /// `fn(key, partition)`. The bulk loader combines this with a
  /// round-robin base assignment to load without touching all num_keys
  /// keys; the override count is O(templates × queries_per_txn).
  template <typename Fn>
  void ForEachInitialOverride(Fn&& fn) const {
    for (const auto& [key, partition] : initial_override_) fn(key, partition);
  }
  size_t initial_override_count() const { return initial_override_.size(); }

  /// Number of templates that start distributed.
  uint32_t distributed_count() const { return distributed_count_; }

  /// Instantiates a normal transaction from a template.
  std::unique_ptr<txn::Transaction> Instantiate(uint32_t template_id,
                                                int64_t write_value) const;

  /// Instantiates a *paired* transaction (drifting workloads): the last
  /// half of the *read* positions (up to floor(q/2)) borrow the partner
  /// template's first keys; the base template's own writes stay on its own
  /// keys. By default borrowed partner accesses are read-only — a
  /// transaction reads foreign data but only writes its own. With
  /// `write_borrowed` the borrowed positions become writes against the
  /// partner's keys instead (DriftPhase::pair_write), modelling state the
  /// borrower partition writes through remotely. Borrowed keys are always
  /// accessed in partner-key order, so concurrent borrowers of the same
  /// partner acquire locks in one global order.
  std::unique_ptr<txn::Transaction> InstantiatePaired(
      uint32_t base_template, uint32_t partner_template, int64_t write_value,
      bool write_borrowed = false) const;

  /// Owning template of a key, or kNoTemplate for unowned keys.
  static constexpr uint32_t kNoTemplate = UINT32_MAX;
  uint32_t TemplateOfKey(storage::TupleKey key) const {
    auto it = template_of_.find(key);
    return it == template_of_.end() ? kNoTemplate : it->second;
  }

 private:
  WorkloadSpec spec_;
  uint32_t num_partitions_;
  std::vector<TxnTemplate> templates_;
  /// Initial placement, sparse: only keys whose partition differs from the
  /// round-robin default `key % num_partitions` (a subset of the template
  /// keys). Sorted so the bulk loader can stream overrides in key order.
  std::map<storage::TupleKey, uint32_t> initial_override_;
  /// key -> owning template, for template keys only.
  std::unordered_map<storage::TupleKey, uint32_t> template_of_;
  uint32_t distributed_count_ = 0;
};

}  // namespace soap::workload

#endif  // SOAP_WORKLOAD_TEMPLATE_CATALOG_H_
