#include "src/workload/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace soap::workload {

std::vector<TraceEvent> WorkloadTrace::EventsForInterval(
    uint32_t interval) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events_) {
    if (ev.interval == interval) out.push_back(ev);
  }
  return out;
}

std::vector<std::unique_ptr<txn::Transaction>> WorkloadTrace::ReplayInterval(
    uint32_t interval, const TemplateCatalog& catalog) const {
  std::vector<std::unique_ptr<txn::Transaction>> batch;
  for (const TraceEvent& ev : events_) {
    if (ev.interval != interval) continue;
    if (ev.template_id >= catalog.size()) continue;  // foreign trace
    if (ev.partner_template != TraceEvent::kNoPartner &&
        ev.partner_template < catalog.size() &&
        ev.partner_template != ev.template_id) {
      batch.push_back(catalog.InstantiatePaired(
          ev.template_id, ev.partner_template, ev.write_value));
    } else {
      batch.push_back(catalog.Instantiate(ev.template_id, ev.write_value));
    }
  }
  return batch;
}

uint32_t WorkloadTrace::IntervalCount() const {
  uint32_t max_interval = 0;
  bool any = false;
  for (const TraceEvent& ev : events_) {
    max_interval = std::max(max_interval, ev.interval);
    any = true;
  }
  return any ? max_interval + 1 : 0;
}

bool WorkloadTrace::NeedsV2() const {
  for (const TraceEvent& ev : events_) {
    if (ev.phase != 0 || ev.partner_template != TraceEvent::kNoPartner) {
      return true;
    }
  }
  return false;
}

Status WorkloadTrace::SaveToFile(const std::string& path,
                                 uint32_t num_templates) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  const bool v2 = NeedsV2();
  out << "soap-trace " << (v2 ? "v2" : "v1") << " " << num_templates << "\n";
  for (const TraceEvent& ev : events_) {
    out << ev.interval << " " << ev.template_id << " " << ev.write_value;
    if (v2) {
      out << " " << ev.phase << " ";
      if (ev.partner_template == TraceEvent::kNoPartner) {
        out << -1;
      } else {
        out << ev.partner_template;
      }
    }
    out << "\n";
  }
  return out.good() ? Status::OK() : Status::Internal("short write");
}

Result<WorkloadTrace> WorkloadTrace::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string magic, version;
  uint32_t num_templates = 0;
  if (!(in >> magic >> version >> num_templates) || magic != "soap-trace" ||
      (version != "v1" && version != "v2")) {
    return Status::Corruption("not a soap-trace v1/v2 file: " + path);
  }
  const bool v2 = version == "v2";
  WorkloadTrace trace;
  TraceEvent ev;
  while (in >> ev.interval >> ev.template_id >> ev.write_value) {
    if (v2) {
      int64_t partner = 0;
      if (!(in >> ev.phase >> partner)) {
        return Status::Corruption("truncated v2 record in " + path);
      }
      if (partner < 0) {
        ev.partner_template = TraceEvent::kNoPartner;
      } else if (partner >= static_cast<int64_t>(num_templates)) {
        return Status::Corruption("partner template " +
                                  std::to_string(partner) +
                                  " out of range in " + path);
      } else {
        ev.partner_template = static_cast<uint32_t>(partner);
      }
    } else {
      ev.phase = 0;
      ev.partner_template = TraceEvent::kNoPartner;
    }
    if (ev.template_id >= num_templates) {
      return Status::Corruption("template id " +
                                std::to_string(ev.template_id) +
                                " out of range in " + path);
    }
    trace.events_.push_back(ev);
  }
  if (!in.eof()) return Status::Corruption("trailing garbage in " + path);
  return trace;
}

}  // namespace soap::workload
