// Workload trace record & replay: captures the generated arrival stream
// (interval, template, write value) to a file so a run can be replayed
// bit-for-bit on a different build, scheduler, or configuration — the
// deterministic-comparison tool the EC2 prototype never had.

#ifndef SOAP_WORKLOAD_TRACE_H_
#define SOAP_WORKLOAD_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/txn/transaction.h"
#include "src/workload/template_catalog.h"

namespace soap::workload {

/// One recorded arrival. `phase` and `partner_template` capture drifting
/// workloads (format v2): `phase` is the DriftPhase index governing the
/// interval (0 when stationary) and `partner_template` is the paired
/// template whose keys the transaction's tail queries touched
/// (kNoPartner = ordinary single-template arrival).
struct TraceEvent {
  static constexpr uint32_t kNoPartner = UINT32_MAX;
  uint32_t interval = 0;
  uint32_t template_id = 0;
  int64_t write_value = 0;
  uint32_t phase = 0;
  uint32_t partner_template = kNoPartner;
};

/// An in-memory workload trace with text-file persistence. File formats:
///   v1: header "soap-trace v1 <num_templates>",
///       lines "<interval> <template_id> <write_value>"
///   v2: header "soap-trace v2 <num_templates>",
///       lines "<interval> <template_id> <write_value> <phase> <partner>"
///       where <partner> is -1 for unpaired arrivals.
/// SaveToFile writes v1 whenever no event carries drift data, so
/// stationary runs keep producing byte-identical trace files; v1 files
/// load as phase 0 / unpaired (backward compatible).
class WorkloadTrace {
 public:
  WorkloadTrace() = default;

  void Record(uint32_t interval, uint32_t template_id, int64_t write_value) {
    events_.push_back({interval, template_id, write_value, 0,
                       TraceEvent::kNoPartner});
  }

  /// Drift-aware record (format v2 fields).
  void Record(uint32_t interval, uint32_t template_id, int64_t write_value,
              uint32_t phase, uint32_t partner_template) {
    events_.push_back(
        {interval, template_id, write_value, phase, partner_template});
  }

  size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Arrivals recorded for one interval, in recording order.
  std::vector<TraceEvent> EventsForInterval(uint32_t interval) const;

  /// Instantiates the interval's arrivals against a catalog (the replay
  /// side of the record/replay pair). Paired arrivals replay through
  /// TemplateCatalog::InstantiatePaired.
  std::vector<std::unique_ptr<txn::Transaction>> ReplayInterval(
      uint32_t interval, const TemplateCatalog& catalog) const;

  /// Highest interval index present (+1), i.e. the replay horizon.
  uint32_t IntervalCount() const;

  /// True if any event carries drift data (forces format v2 on save).
  bool NeedsV2() const;

  Status SaveToFile(const std::string& path,
                    uint32_t num_templates) const;
  static Result<WorkloadTrace> LoadFromFile(const std::string& path);

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace soap::workload

#endif  // SOAP_WORKLOAD_TRACE_H_
