// Workload trace record & replay: captures the generated arrival stream
// (interval, template, write value) to a file so a run can be replayed
// bit-for-bit on a different build, scheduler, or configuration — the
// deterministic-comparison tool the EC2 prototype never had.

#ifndef SOAP_WORKLOAD_TRACE_H_
#define SOAP_WORKLOAD_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/txn/transaction.h"
#include "src/workload/template_catalog.h"

namespace soap::workload {

/// One recorded arrival.
struct TraceEvent {
  uint32_t interval = 0;
  uint32_t template_id = 0;
  int64_t write_value = 0;
};

/// An in-memory workload trace with text-file persistence. The file format
/// is one line per arrival: "<interval> <template_id> <write_value>",
/// preceded by a header line "soap-trace v1 <num_templates>".
class WorkloadTrace {
 public:
  WorkloadTrace() = default;

  void Record(uint32_t interval, uint32_t template_id, int64_t write_value) {
    events_.push_back({interval, template_id, write_value});
  }

  size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Arrivals recorded for one interval, in recording order.
  std::vector<TraceEvent> EventsForInterval(uint32_t interval) const;

  /// Instantiates the interval's arrivals against a catalog (the replay
  /// side of the record/replay pair).
  std::vector<std::unique_ptr<txn::Transaction>> ReplayInterval(
      uint32_t interval, const TemplateCatalog& catalog) const;

  /// Highest interval index present (+1), i.e. the replay horizon.
  uint32_t IntervalCount() const;

  Status SaveToFile(const std::string& path,
                    uint32_t num_templates) const;
  static Result<WorkloadTrace> LoadFromFile(const std::string& path);

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace soap::workload

#endif  // SOAP_WORKLOAD_TRACE_H_
