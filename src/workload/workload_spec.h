// Workload specification mirroring §4.1 of the paper: 500,000 tuples,
// distinct transaction templates of 5 single-tuple queries (50/50
// read/write), Zipf (s = 1.16, 23,457 templates — the 80-20 rule) or
// uniform (30,000 templates) popularity, Poisson arrivals per 20-second
// interval, and the fraction α of transactions that are distributed before
// repartitioning and collocated after.

#ifndef SOAP_WORKLOAD_WORKLOAD_SPEC_H_
#define SOAP_WORKLOAD_WORKLOAD_SPEC_H_

#include <cstdint>
#include <vector>

namespace soap::workload {

enum class PopularityDist : uint8_t { kUniform, kZipf };

/// Load level relative to the cluster's pre-repartitioning capacity:
/// HighLoad = 130% (overload), LowLoad = 65% utilisation (§4.1).
enum class LoadLevel : uint8_t { kLow, kHigh };

constexpr double kHighLoadUtilization = 1.30;
constexpr double kLowLoadUtilization = 0.65;

/// One phase of a drifting workload. From `start_interval` on (until the
/// next phase starts), template popularity ranks are rotated by `rotation`
/// positions, the Zipf skew becomes `zipf_s`, and a `pair_fraction` of
/// transactions additionally co-access a partner template's keys
/// (partner = (base + pair_stride) mod num_templates). Paired
/// transactions create *cross-template* co-access that a template-
/// granularity one-shot plan can never collocate — the drift signal the
/// online planner chases.
struct DriftPhase {
  uint32_t start_interval = 0;
  uint32_t rotation = 0;
  double zipf_s = 1.16;
  double pair_fraction = 0.0;
  uint32_t pair_stride = 1;
  /// When nonzero, paired transactions borrow reads from a fixed *hub* of
  /// the `pair_hub` hottest templates (partner = base % pair_hub) instead
  /// of the strided partner. This models shared reference data — a small
  /// read-mostly set co-accessed from every partition. No single placement
  /// can collocate a hub with all of its readers, which makes it the
  /// canonical replication target (migration can satisfy at most one
  /// reader partition; copies satisfy all of them).
  uint32_t pair_hub = 0;
  /// Hub selection by *issuing partition* instead of by base template:
  /// partner = hub template (home_partition(base) + 1) % pair_hub. Every
  /// transaction homed on partition p then leans on one fixed reference
  /// template homed on p's neighbour — and keeps doing so across
  /// popularity rotations, because the mapping depends on where the base
  /// template lives, not on which template happens to be hot. This is the
  /// leader-shift scenario: each hub key has exactly one borrower
  /// partition whose pull survives drift. Requires pair_hub > 0.
  bool pair_affinity = false;
  /// Probability that a paired transaction *writes* its borrowed partner
  /// keys instead of reading them. Zero (the default) keeps borrowed
  /// accesses read-only. Nonzero turns the hub into remotely-written
  /// state: the borrower partition issues a steady write stream against
  /// keys whose primary lives elsewhere, which only a leader shift (or a
  /// migration, when no copy blocks it) can make single-node again.
  double pair_write = 0.0;
};

struct WorkloadSpec {
  PopularityDist distribution = PopularityDist::kZipf;
  /// Distinct transaction templates: the paper uses 23,457 for Zipf and
  /// 30,000 for uniform.
  uint32_t num_templates = 23'457;
  double zipf_s = 1.16;
  uint64_t num_keys = 500'000;
  uint32_t queries_per_txn = 5;
  double write_fraction = 0.5;
  /// Fraction of templates that are distributed before the repartitioning
  /// (and collocated after) — the paper's α, swept over {1.0, 0.6, 0.2}.
  double alpha = 1.0;
  uint64_t seed = 7;
  /// Drift phases sorted by start_interval; empty = stationary workload
  /// (the generator's draw sequence is then bit-identical to the
  /// pre-drift implementation).
  std::vector<DriftPhase> phases;

  /// Index into `phases` governing `interval`, or -1 before the first
  /// phase starts (stationary behaviour).
  int PhaseIndexAt(uint32_t interval) const {
    int idx = -1;
    for (size_t i = 0; i < phases.size(); ++i) {
      if (phases[i].start_interval <= interval) idx = static_cast<int>(i);
    }
    return idx;
  }
  const DriftPhase* PhaseAt(uint32_t interval) const {
    const int idx = PhaseIndexAt(interval);
    return idx < 0 ? nullptr : &phases[static_cast<size_t>(idx)];
  }

  /// The paper's two configurations.
  static WorkloadSpec Zipf(double alpha, uint64_t seed = 7) {
    WorkloadSpec s;
    s.distribution = PopularityDist::kZipf;
    s.num_templates = 23'457;
    s.alpha = alpha;
    s.seed = seed;
    return s;
  }
  static WorkloadSpec Uniform(double alpha, uint64_t seed = 7) {
    WorkloadSpec s;
    s.distribution = PopularityDist::kUniform;
    s.num_templates = 30'000;
    s.alpha = alpha;
    s.seed = seed;
    return s;
  }

  /// Hotspot drift: every `phase_len` intervals (starting at
  /// `first_interval`) the popularity ranking rotates by
  /// num_templates/num_phases positions, so the hot set wanders through
  /// the template space while `pair_fraction` of transactions co-access a
  /// fixed-stride partner template.
  static WorkloadSpec HotspotDrift(const WorkloadSpec& base,
                                   uint32_t first_interval,
                                   uint32_t num_phases, uint32_t phase_len,
                                   double pair_fraction = 0.35) {
    WorkloadSpec s = base;
    const uint32_t step =
        num_phases > 0 ? s.num_templates / num_phases : 0;
    for (uint32_t p = 0; p < num_phases; ++p) {
      DriftPhase ph;
      ph.start_interval = first_interval + p * phase_len;
      ph.rotation = (p * (step > 0 ? step : 1)) % s.num_templates;
      ph.zipf_s = s.zipf_s;
      ph.pair_fraction = pair_fraction;
      ph.pair_stride = s.num_templates / 2 + 1;
      s.phases.push_back(ph);
    }
    return s;
  }

  /// Zipf-skew flip: phases alternate between a highly skewed (`high_s`)
  /// and a broad (`low_s`) popularity distribution, shifting load between
  /// a narrow hot set and the long tail.
  static WorkloadSpec SkewFlip(const WorkloadSpec& base,
                               uint32_t first_interval, uint32_t num_phases,
                               uint32_t phase_len, double high_s = 1.16,
                               double low_s = 0.4,
                               double pair_fraction = 0.35) {
    WorkloadSpec s = base;
    for (uint32_t p = 0; p < num_phases; ++p) {
      DriftPhase ph;
      ph.start_interval = first_interval + p * phase_len;
      ph.rotation = 0;
      ph.zipf_s = (p % 2 == 0) ? high_s : low_s;
      ph.pair_fraction = pair_fraction;
      ph.pair_stride = s.num_templates / 2 + 1;
      s.phases.push_back(ph);
    }
    return s;
  }

  /// Template-mix rotation: the popularity ranking stays put but each
  /// phase re-pairs templates with a different partner stride, churning
  /// *which* cross-template groups co-access.
  static WorkloadSpec MixRotation(const WorkloadSpec& base,
                                  uint32_t first_interval,
                                  uint32_t num_phases, uint32_t phase_len,
                                  double pair_fraction = 0.35) {
    WorkloadSpec s = base;
    for (uint32_t p = 0; p < num_phases; ++p) {
      DriftPhase ph;
      ph.start_interval = first_interval + p * phase_len;
      ph.rotation = 0;
      ph.zipf_s = s.zipf_s;
      ph.pair_fraction = pair_fraction;
      // Distinct deterministic stride per phase (Weyl-style multiplier
      // keeps successive strides far apart in the template space).
      ph.pair_stride =
          s.num_templates > 1
              ? 1 + static_cast<uint32_t>(
                        (static_cast<uint64_t>(p) * 2654435761ull) %
                        (s.num_templates - 1))
              : 0;
      s.phases.push_back(ph);
    }
    return s;
  }
};

}  // namespace soap::workload

#endif  // SOAP_WORKLOAD_WORKLOAD_SPEC_H_
