// Workload specification mirroring §4.1 of the paper: 500,000 tuples,
// distinct transaction templates of 5 single-tuple queries (50/50
// read/write), Zipf (s = 1.16, 23,457 templates — the 80-20 rule) or
// uniform (30,000 templates) popularity, Poisson arrivals per 20-second
// interval, and the fraction α of transactions that are distributed before
// repartitioning and collocated after.

#ifndef SOAP_WORKLOAD_WORKLOAD_SPEC_H_
#define SOAP_WORKLOAD_WORKLOAD_SPEC_H_

#include <cstdint>

namespace soap::workload {

enum class PopularityDist : uint8_t { kUniform, kZipf };

/// Load level relative to the cluster's pre-repartitioning capacity:
/// HighLoad = 130% (overload), LowLoad = 65% utilisation (§4.1).
enum class LoadLevel : uint8_t { kLow, kHigh };

constexpr double kHighLoadUtilization = 1.30;
constexpr double kLowLoadUtilization = 0.65;

struct WorkloadSpec {
  PopularityDist distribution = PopularityDist::kZipf;
  /// Distinct transaction templates: the paper uses 23,457 for Zipf and
  /// 30,000 for uniform.
  uint32_t num_templates = 23'457;
  double zipf_s = 1.16;
  uint64_t num_keys = 500'000;
  uint32_t queries_per_txn = 5;
  double write_fraction = 0.5;
  /// Fraction of templates that are distributed before the repartitioning
  /// (and collocated after) — the paper's α, swept over {1.0, 0.6, 0.2}.
  double alpha = 1.0;
  uint64_t seed = 7;

  /// The paper's two configurations.
  static WorkloadSpec Zipf(double alpha, uint64_t seed = 7) {
    WorkloadSpec s;
    s.distribution = PopularityDist::kZipf;
    s.num_templates = 23'457;
    s.alpha = alpha;
    s.seed = seed;
    return s;
  }
  static WorkloadSpec Uniform(double alpha, uint64_t seed = 7) {
    WorkloadSpec s;
    s.distribution = PopularityDist::kUniform;
    s.num_templates = 30'000;
    s.alpha = alpha;
    s.seed = seed;
    return s;
  }
};

}  // namespace soap::workload

#endif  // SOAP_WORKLOAD_WORKLOAD_SPEC_H_
