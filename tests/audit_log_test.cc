#include "src/obs/audit_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/json.h"

namespace soap::obs {
namespace {

TEST(AuditRecordTest, BuildsOneSchemaVersionedLine) {
  AuditLog log;
  {
    AuditRecord rec(&log, "replan", 1'500'000);
    rec.U64("cycle", 3)
        .Str("outcome", "emitted")
        .I64("delta", -7)
        .Dbl("ratio", 0.25)
        .Bool("ok", true)
        .Raw("ops", "[1,2]");
  }
  ASSERT_EQ(log.size(), 1u);
  const std::string& line = log.lines().front();
  Result<json::Value> parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_EQ(parsed->GetUint64("v"), kAuditSchemaVersion);
  EXPECT_EQ(parsed->GetUint64("t_us"), 1'500'000u);
  EXPECT_EQ(parsed->GetString("type"), "replan");
  EXPECT_EQ(parsed->GetUint64("cycle"), 3u);
  EXPECT_EQ(parsed->GetString("outcome"), "emitted");
  EXPECT_EQ(parsed->Find("delta")->AsInt64(), -7);
  EXPECT_DOUBLE_EQ(parsed->GetDouble("ratio"), 0.25);
  EXPECT_TRUE(parsed->Find("ok")->AsBool());
  EXPECT_EQ(parsed->Find("ops")->AsArray().size(), 2u);
  // Schema fields come first, in fixed order, so streams diff cleanly.
  EXPECT_EQ(line.rfind("{\"v\":1,\"t_us\":1500000,\"type\":\"replan\"", 0),
            0u)
      << line;
}

TEST(AuditRecordTest, StringValuesAreEscaped) {
  AuditLog log;
  { AuditRecord(&log, "abort", 0).Str("reason", "a\"b\\c\nd"); }
  Result<json::Value> parsed = json::Parse(log.lines().front());
  ASSERT_TRUE(parsed.ok()) << log.lines().front();
  EXPECT_EQ(parsed->GetString("reason"), "a\"b\\c\nd");
}

TEST(AuditRecordTest, NullLogIsSafeAndFree) {
  // The disabled path: producers always construct the record builder, a
  // nullptr sink must make every call a no-op.
  AuditRecord rec(nullptr, "replan", 1);
  rec.U64("cycle", 1).Str("outcome", "emitted").Dbl("x", 0.5);
}

TEST(AuditLogTest, DropsBeyondMaxRecords) {
  AuditLog::Config config;
  config.max_records = 3;
  AuditLog log(config);
  for (int i = 0; i < 5; ++i) {
    AuditRecord(&log, "replan", i).U64("cycle", static_cast<uint64_t>(i));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  // Flight recorder keeps the head (the decisions worth explaining).
  Result<json::Value> first = json::Parse(log.lines().front());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->GetUint64("cycle"), 0u);
}

TEST(AuditLogTest, JsonlRoundTripsThroughParser) {
  AuditLog log;
  AuditRecord(&log, "run_meta", 0).U64("seed", 42).Str("strategy", "Hybrid");
  AuditRecord(&log, "replan", 20'000'000)
      .U64("cycle", 1)
      .Str("outcome", "skipped_small");
  const std::string jsonl = log.ToJsonl();
  Result<std::vector<json::Value>> parsed = json::ParseLines(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].GetString("type"), "run_meta");
  EXPECT_EQ((*parsed)[1].GetString("type"), "replan");
}

TEST(AuditLogTest, WriteFileMatchesToJsonl) {
  AuditLog log;
  AuditRecord(&log, "run_meta", 0).U64("seed", 1);
  const std::string path = ::testing::TempDir() + "audit_log_test.jsonl";
  ASSERT_TRUE(log.WriteFile(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream contents;
  contents << in.rdbuf();
  std::remove(path.c_str());
  EXPECT_EQ(contents.str(), log.ToJsonl());
}

}  // namespace
}  // namespace soap::obs
