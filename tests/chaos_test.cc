#include "src/check/chaos.h"

#include <gtest/gtest.h>

#include <string>

#include "src/fault/fault_spec.h"

namespace soap::check {
namespace {

TEST(ChaosSampleTest, DeterministicPerSeed) {
  ChaosDomain domain;
  const fault::FaultSpec a = SampleChaosSpec(7, domain);
  const fault::FaultSpec b = SampleChaosSpec(7, domain);
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(ChaosSampleTest, SeedsDiffer) {
  ChaosDomain domain;
  bool any_differ = false;
  const std::string base = SampleChaosSpec(1, domain).ToString();
  for (uint64_t seed = 2; seed < 6; ++seed) {
    if (SampleChaosSpec(seed, domain).ToString() != base) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(ChaosSampleTest, RespectsTheDomain) {
  ChaosDomain domain;
  domain.num_nodes = 4;
  domain.earliest = Seconds(10);
  domain.latest = Seconds(50);
  domain.max_crashes = 2;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const fault::FaultSpec spec = SampleChaosSpec(seed, domain);
    EXPECT_FALSE(spec.empty()) << "seed " << seed;
    EXPECT_EQ(spec.seed, seed);
    EXPECT_LE(spec.crashes.size(), domain.max_crashes);
    for (const fault::CrashEvent& c : spec.crashes) {
      EXPECT_LT(c.node, domain.num_nodes);
      EXPECT_GE(c.at, domain.earliest);
      EXPECT_LT(c.at, domain.latest);
      EXPECT_GE(c.down, domain.min_down);
      EXPECT_LE(c.down, domain.max_down);
    }
    for (const fault::MessageRule& r : spec.drops) {
      EXPECT_GT(r.p, 0.0);
      EXPECT_LE(r.p, domain.max_drop_p);
    }
  }
}

TEST(ChaosSampleTest, SampledSpecsRoundTripThroughTheGrammar) {
  ChaosDomain domain;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const fault::FaultSpec spec = SampleChaosSpec(seed, domain);
    Result<fault::FaultSpec> reparsed = fault::FaultSpec::Parse(spec.ToString());
    ASSERT_TRUE(reparsed.ok())
        << "seed " << seed << ": " << reparsed.status().ToString()
        << " for " << spec.ToString();
    EXPECT_EQ(reparsed->ToString(), spec.ToString());
  }
}

TEST(ChaosShrinkTest, ShrinksToTheFailingComponent) {
  // Build a busy schedule; the oracle fails iff a crash of node 2
  // survives, so everything else must shrink away.
  fault::FaultSpec spec;
  spec.crashes.push_back({1, Seconds(40), Seconds(10)});
  spec.crashes.push_back({2, Seconds(60), Seconds(10)});
  spec.crashes.push_back({3, Seconds(80), Seconds(10)});
  fault::MessageRule drop;
  drop.p = 0.01;
  spec.drops.push_back(drop);
  fault::PartitionEvent part;
  part.at = Seconds(50);
  part.duration = Seconds(5);
  part.group = {0, 1};
  spec.partitions.push_back(part);

  uint32_t evaluations = 0;
  ChaosRunFn oracle = [&evaluations](const fault::FaultSpec& s) {
    ++evaluations;
    for (const fault::CrashEvent& c : s.crashes) {
      if (c.node == 2) return ChaosVerdict{false, "node 2 crashed"};
    }
    return ChaosVerdict{true, ""};
  };

  const ShrinkResult shrunk = ShrinkFailingSpec(spec, oracle, /*budget=*/64);
  ASSERT_EQ(shrunk.spec.crashes.size(), 1u);
  EXPECT_EQ(shrunk.spec.crashes[0].node, 2u);
  EXPECT_TRUE(shrunk.spec.drops.empty());
  EXPECT_TRUE(shrunk.spec.partitions.empty());
  EXPECT_EQ(shrunk.removed, 4u);
  EXPECT_GT(shrunk.runs, 0u);
  EXPECT_LE(shrunk.runs, 64u);
  EXPECT_EQ(shrunk.runs, evaluations);
  // The reproducer still fails.
  EXPECT_FALSE(oracle(shrunk.spec).ok);
}

TEST(ChaosShrinkTest, BudgetBoundsTheSearch) {
  fault::FaultSpec spec;
  for (uint32_t n = 0; n < 4; ++n) {
    spec.crashes.push_back({n, Seconds(40 + 10 * n), Seconds(5)});
  }
  ChaosRunFn always_fails = [](const fault::FaultSpec&) {
    return ChaosVerdict{false, "always"};
  };
  const ShrinkResult shrunk = ShrinkFailingSpec(spec, always_fails, 2);
  EXPECT_LE(shrunk.runs, 2u);
  // With an oracle that fails on anything, shrinking drives toward the
  // minimal schedule as far as the budget allows.
  EXPECT_LE(shrunk.spec.crashes.size(), spec.crashes.size());
}

}  // namespace
}  // namespace soap::check
