// soap::check end-to-end through the engine: a checked run over the full
// planner + replica + fault stack reports a clean history, each
// --check_break corruption mode is detected (the checker is not vacuously
// green), the recorder-off run stays byte-identical to the seed, and
// --history_out dumps a parseable JSONL history.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/json.h"
#include "src/engine/experiment.h"

namespace soap::engine {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0);
  config.workload_options.spec.num_templates = 200;
  config.workload_options.spec.num_keys = 4'000;
  config.workload_options.utilization = 0.65;
  config.warmup_intervals = 2;
  config.measured_intervals = 12;
  config.deployment.strategy = SchedulingStrategy::kHybrid;
  config.seed = 5;
  return config;
}

// Hub workload with planner + replicas: half of all transactions pair
// with one of 4 hot shared templates whose keys are both written (default
// write fraction) and read from everywhere, so the history has real
// write-read dependencies and replica copy applies for the checker to
// verify. (The default workload's read and write key sets are disjoint,
// which silences the read rules end-to-end; see DESIGN.md §6.)
ExperimentConfig HubConfig() {
  ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0);
  config.workload_options.spec.num_templates = 200;
  config.workload_options.spec.num_keys = 2'000;
  workload::DriftPhase hub;
  hub.start_interval = 0;
  hub.zipf_s = config.workload_options.spec.zipf_s;
  hub.pair_fraction = 0.5;
  hub.pair_hub = 4;
  config.workload_options.spec.phases.push_back(hub);
  config.workload_options.utilization = 0.65;
  config.warmup_intervals = 2;
  config.measured_intervals = 8;
  config.deployment.strategy = SchedulingStrategy::kHybrid;
  config.seed = 11;
  config.planner_options.enabled = true;
  config.replicas.enabled = true;
  config.replicas.max_copies = config.cluster.num_nodes;
  return config;
}

bool Has(const check::CheckReport& report, const std::string& check) {
  for (const check::Violation& v : report.violations) {
    if (v.check == check) return true;
  }
  return false;
}

TEST(CheckE2eTest, CleanRunPassesTheChecker) {
  ExperimentConfig config = TinyConfig();
  config.check.enabled = true;
  ExperimentResult r = Experiment(config).Run();
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_TRUE(r.check_enabled);
  EXPECT_TRUE(r.check_report.ok()) << r.check_report.ToString();
  EXPECT_GT(r.check_report.txns_checked, 0u);
  EXPECT_GT(r.check_report.ww_edges, 0u);
  EXPECT_GT(r.invariant_checks, 0u);
  EXPECT_EQ(r.check_breaks_fired, 0u);
}

TEST(CheckE2eTest, HubRunExercisesReadDependenciesAndReplicas) {
  ExperimentConfig config = HubConfig();
  config.check.enabled = true;
  config.fault_options.spec = "crash:node=2,at=150s,down=30s";
  ExperimentResult r = Experiment(config).Run();
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_TRUE(r.check_report.ok()) << r.check_report.ToString();
  // Shared hub keys are both read and written, so the history has real
  // write-read dependencies — the read rules are not vacuous here.
  EXPECT_GT(r.check_report.wr_edges, 0u);
  EXPECT_GT(r.check_report.reads_checked, 0u);
  // Replica lifecycle ran under the checker's invariant sweeps.
  EXPECT_GT(r.planner_stats.replica_creates_emitted, 0u);
  EXPECT_GT(r.invariant_checks, 0u);
}

TEST(CheckE2eTest, BreakLostWriteIsDetected) {
  ExperimentConfig config = TinyConfig();
  config.check.break_mode = "lost_write";
  ExperimentResult r = Experiment(config).Run();
  EXPECT_EQ(r.check_breaks_fired, 1u);
  ASSERT_FALSE(r.check_report.ok());
  EXPECT_TRUE(Has(r.check_report, "lost_write") ||
              Has(r.check_report, "final_state"))
      << r.check_report.ToString();
}

TEST(CheckE2eTest, BreakDoubleDeployIsDetected) {
  ExperimentConfig config = TinyConfig();
  config.check.break_mode = "double_deploy";
  ExperimentResult r = Experiment(config).Run();
  EXPECT_EQ(r.check_breaks_fired, 1u);
  ASSERT_FALSE(r.check_report.ok());
  EXPECT_TRUE(Has(r.check_report, "ownership")) << r.check_report.ToString();
}

TEST(CheckE2eTest, BreakReplicaApplyIsDetected) {
  // Needs a run that actually creates replicas for the corruption site to
  // exist at all.
  ExperimentConfig config = HubConfig();
  config.check.break_mode = "replica_apply";
  ExperimentResult r = Experiment(config).Run();
  EXPECT_GT(r.planner_stats.replica_creates_emitted, 0u);
  EXPECT_EQ(r.check_breaks_fired, 1u);
  ASSERT_FALSE(r.check_report.ok());
  EXPECT_TRUE(Has(r.check_report, "ownership") ||
              Has(r.check_report, "replica_coherence"))
      << r.check_report.ToString();
}

TEST(CheckE2eTest, CheckOffIsByteIdenticalToCheckOn) {
  // The recorder only observes; enabling it must not perturb the run.
  ExperimentConfig off = TinyConfig();
  ExperimentConfig on = TinyConfig();
  on.check.enabled = true;
  ExperimentResult a = Experiment(off).Run();
  ExperimentResult b = Experiment(on).Run();
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.counters.committed_normal, b.counters.committed_normal);
  EXPECT_EQ(a.counters.aborted_normal, b.counters.aborted_normal);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(CheckE2eTest, HistoryOutDumpsParseableJsonl) {
  ExperimentConfig config = TinyConfig();
  const std::string path = ::testing::TempDir() + "check_e2e_history.jsonl";
  config.check.history_out = path;
  ExperimentResult r = Experiment(config).Run();
  EXPECT_TRUE(r.check_enabled);  // history_out implies enabled
  EXPECT_TRUE(r.obs_export.ok()) << r.obs_export.ToString();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  Result<std::vector<json::Value>> lines = json::ParseLines(buf.str());
  ASSERT_TRUE(lines.ok()) << lines.status().ToString();
  EXPECT_GT(lines->size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace soap::engine
