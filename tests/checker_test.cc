// Synthetic histories, one per checker rule. The default experiment
// workload has disjoint read and write key sets (see DESIGN.md §6), so
// the read-dependency rules never fire end-to-end there; these tests pin
// each rule against a hand-built history instead.

#include "src/check/checker.h"

#include <gtest/gtest.h>

#include <string>

#include "src/check/history_recorder.h"

namespace soap::check {
namespace {

txn::Transaction Writer(uint64_t id, storage::TupleKey key, int64_t value) {
  txn::Transaction t;
  t.id = id;
  txn::Operation op;
  op.kind = txn::OpKind::kWrite;
  op.key = key;
  op.write_value = value;
  t.ops.push_back(op);
  return t;
}

storage::Tuple Row(storage::TupleKey key, int64_t content) {
  storage::Tuple t;
  t.key = key;
  t.content = content;
  return t;
}

/// The canonical clean flow: apply on the primary, then commit.
void ApplyAndCommit(HistoryRecorder* rec, uint64_t id, storage::TupleKey key,
                    int64_t value, SimTime at, uint32_t partition = 0) {
  rec->OnApplyUpdate(partition, id, Row(key, value));
  rec->OnCommit(Writer(id, key, value), at);
}

bool Has(const CheckReport& report, const std::string& check) {
  for (const Violation& v : report.violations) {
    if (v.check == check) return true;
  }
  return false;
}

TEST(CheckerTest, CleanHistoryHasNoViolations) {
  HistoryRecorder rec;
  ApplyAndCommit(&rec, 1, 10, 100, 10);
  ApplyAndCommit(&rec, 2, 10, 200, 20);
  rec.OnRead(3, 10, 0, 30);  // observes the tail (txn 2)
  rec.OnCommit(Writer(3, 11, 5), 40);
  rec.OnApplyUpdate(0, 3, Row(11, 5));
  CheckReport report = CheckHistory(rec, /*serializable=*/false);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.ww_edges, 1u);
  EXPECT_EQ(report.wr_edges, 1u);
}

TEST(CheckerTest, DirtyReadFromAbortedWriter) {
  HistoryRecorder rec;
  rec.OnApplyUpdate(0, 5, Row(10, 1));  // txn 5's write becomes visible
  rec.OnRead(6, 10, 0, 20);             // txn 6 observes it
  rec.OnAbort(Writer(5, 10, 1));        // ...then txn 5 aborts
  rec.OnCommit(Writer(6, 11, 2), 30);
  CheckReport report = CheckHistory(rec, false);
  EXPECT_TRUE(Has(report, "dirty_read")) << report.ToString();
}

TEST(CheckerTest, DanglingReadFromUnknownWriter) {
  HistoryRecorder rec;
  rec.OnApplyUpdate(0, 7, Row(10, 1));  // writer 7 never commits or aborts
  rec.OnRead(8, 10, 0, 20);
  rec.OnCommit(Writer(8, 11, 2), 30);
  CheckReport report = CheckHistory(rec, false);
  EXPECT_TRUE(Has(report, "dangling_read")) << report.ToString();
  // The apply from the unknown writer is flagged too.
  EXPECT_TRUE(Has(report, "phantom_writer")) << report.ToString();
}

TEST(CheckerTest, StaleReadObservesOverwrittenVersion) {
  HistoryRecorder rec;
  ApplyAndCommit(&rec, 1, 10, 100, 10, /*partition=*/0);
  ApplyAndCommit(&rec, 2, 10, 200, 20, /*partition=*/0);
  // Partition 1 still carries txn 1's version (it never saw txn 2's
  // apply) and serves a read long after txn 2 committed.
  rec.OnApplyUpdate(1, 1, Row(10, 100));
  rec.OnRead(3, 10, 1, 50);
  rec.OnCommit(Writer(3, 11, 5), 60);
  rec.OnApplyUpdate(0, 3, Row(11, 5));
  CheckReport report = CheckHistory(rec, false);
  EXPECT_TRUE(Has(report, "stale_read")) << report.ToString();
}

TEST(CheckerTest, OutOfOrderApplyOnAPartition) {
  HistoryRecorder rec;
  ApplyAndCommit(&rec, 1, 10, 100, 10, /*partition=*/0);
  ApplyAndCommit(&rec, 2, 10, 200, 20, /*partition=*/0);
  // Partition 1 applies the versions backwards.
  rec.OnApplyUpdate(1, 2, Row(10, 200));
  rec.OnApplyUpdate(1, 1, Row(10, 100));
  CheckReport report = CheckHistory(rec, false);
  EXPECT_TRUE(Has(report, "out_of_order_apply")) << report.ToString();
}

TEST(CheckerTest, SkippedVersionsAreNotOutOfOrder) {
  HistoryRecorder rec;
  ApplyAndCommit(&rec, 1, 10, 100, 10);
  ApplyAndCommit(&rec, 2, 10, 200, 20);
  ApplyAndCommit(&rec, 3, 10, 300, 30);
  // Partition 1 was down for version 2 and resumes at version 3: a gap,
  // not a reordering.
  rec.OnApplyUpdate(1, 1, Row(10, 100));
  rec.OnApplyUpdate(1, 3, Row(10, 300));
  CheckReport report = CheckHistory(rec, false);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(CheckerTest, LostWriteNeverAppliedAnywhere) {
  HistoryRecorder rec;
  ApplyAndCommit(&rec, 1, 10, 100, 10);
  rec.OnCommit(Writer(2, 10, 200), 20);  // committed, no apply anywhere
  CheckReport report = CheckHistory(rec, false);
  EXPECT_TRUE(Has(report, "lost_write")) << report.ToString();
}

TEST(CheckerTest, G1cCycleAcrossTwoKeys) {
  HistoryRecorder rec;
  rec.OnApplyUpdate(0, 1, Row(10, 1));
  rec.OnApplyUpdate(0, 2, Row(11, 2));
  rec.OnRead(2, 10, 0, 20);  // t2 reads t1's write: wr t1 -> t2
  rec.OnRead(1, 11, 0, 21);  // t1 reads t2's write: wr t2 -> t1
  rec.OnCommit(Writer(1, 10, 1), 30);
  rec.OnCommit(Writer(2, 11, 2), 31);
  CheckReport report = CheckHistory(rec, false);
  EXPECT_TRUE(Has(report, "g1c_cycle")) << report.ToString();
}

TEST(CheckerTest, WriteSkewOnlyViolatesSerializable) {
  // Classic write skew: each txn reads the key the other writes, both
  // observing the initial version.
  auto build = [](HistoryRecorder* rec) {
    rec->OnRead(1, 11, 0, 10);  // t1 reads k11 (initial)
    rec->OnRead(2, 10, 0, 11);  // t2 reads k10 (initial)
    rec->OnApplyUpdate(0, 1, Row(10, 1));
    rec->OnApplyUpdate(0, 2, Row(11, 2));
    rec->OnCommit(Writer(1, 10, 1), 20);
    rec->OnCommit(Writer(2, 11, 2), 21);
  };
  HistoryRecorder read_committed;
  build(&read_committed);
  CheckReport rc = CheckHistory(read_committed, /*serializable=*/false);
  EXPECT_TRUE(rc.ok()) << rc.ToString();
  EXPECT_EQ(rc.rw_cycles, 1u);

  HistoryRecorder serializable;
  build(&serializable);
  CheckReport ser = CheckHistory(serializable, /*serializable=*/true);
  EXPECT_TRUE(Has(ser, "serialization_cycle")) << ser.ToString();
}

TEST(CheckerTest, ReportDigestNamesTheFirstViolation) {
  HistoryRecorder rec;
  rec.OnCommit(Writer(2, 10, 200), 20);
  CheckReport report = CheckHistory(rec, false);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("lost_write"), std::string::npos);
}

}  // namespace
}  // namespace soap::check
