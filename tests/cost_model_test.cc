#include "src/repartition/cost_model.h"

#include <gtest/gtest.h>

namespace soap::repartition {
namespace {

cluster::ExecutionCosts DefaultCosts() { return cluster::ExecutionCosts{}; }

RepartitionOp Migration(storage::TupleKey key) {
  RepartitionOp op;
  op.kind = RepartitionOpType::kObjectsMigration;
  op.key = key;
  return op;
}

TEST(CostModelTest, CollocatedIsBeginQueriesCommit) {
  cluster::ExecutionCosts c = DefaultCosts();
  CostModel model(c, 5);
  EXPECT_EQ(model.CollocatedTxnCost(),
            c.begin + 5 * c.read_query + c.local_commit);
}

TEST(CostModelTest, DistributedRatioNearTwo) {
  // The paper's model: a transaction spanning >1 partition costs ~2Ci.
  CostModel model(DefaultCosts(), 5);
  const double ratio =
      static_cast<double>(model.DistributedTxnCost(2)) /
      static_cast<double>(model.CollocatedTxnCost());
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(CostModelTest, SinglePartitionDistributedDegenerates) {
  CostModel model(DefaultCosts(), 5);
  EXPECT_EQ(model.DistributedTxnCost(1), model.CollocatedTxnCost());
}

TEST(CostModelTest, CostGrowsWithParticipants) {
  CostModel model(DefaultCosts(), 5);
  EXPECT_LT(model.DistributedTxnCost(2), model.DistributedTxnCost(3));
  EXPECT_LT(model.DistributedTxnCost(3), model.DistributedTxnCost(5));
}

TEST(CostModelTest, RepartitionTxnCostScalesWithOps) {
  CostModel model(DefaultCosts(), 5);
  std::vector<RepartitionOp> one = {Migration(1)};
  std::vector<RepartitionOp> three = {Migration(1), Migration(2),
                                      Migration(3)};
  EXPECT_LT(model.RepartitionTxnCost(one), model.RepartitionTxnCost(three));
}

TEST(CostModelTest, MigrationAlwaysPaysTwoParticipant2pc) {
  cluster::ExecutionCosts c = DefaultCosts();
  CostModel model(c, 5);
  std::vector<RepartitionOp> ops = {Migration(1)};
  EXPECT_EQ(model.RepartitionTxnCost(ops),
            c.begin + c.migrate_insert + c.migrate_delete +
                2 * (c.prepare + c.commit_apply));
}

TEST(CostModelTest, ReplicaDeletionAloneIsLocal) {
  cluster::ExecutionCosts c = DefaultCosts();
  CostModel model(c, 5);
  RepartitionOp del;
  del.kind = RepartitionOpType::kReplicaDeletion;
  std::vector<RepartitionOp> ops = {del};
  EXPECT_EQ(model.RepartitionTxnCost(ops),
            c.begin + c.replica_delete + c.local_commit);
}

TEST(CostModelTest, PiggybackedOpSavesOverhead) {
  // The entire point of §3.4: piggybacking pays only the op work, not
  // begin + locks + 2PC.
  CostModel model(DefaultCosts(), 5);
  std::vector<RepartitionOp> ops = {Migration(1)};
  EXPECT_LT(model.PiggybackedOpCost(ops[0]), model.RepartitionTxnCost(ops));
}

TEST(CostModelTest, AbstractCostMatchesPaper) {
  EXPECT_DOUBLE_EQ(CostModel::AbstractCost(false), 1.0);
  EXPECT_DOUBLE_EQ(CostModel::AbstractCost(true), 2.0);
}

}  // namespace
}  // namespace soap::repartition
