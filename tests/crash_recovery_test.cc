// Integration tests for soap::fault: a node crashes in the middle of an
// active repartitioning round, under each of the five scheduling
// strategies. The run must stay consistent (storage matches routing after
// recovery), drain cleanly, keep the 2PC stats balanced, leak no locks,
// and remain deterministic for a fixed (seed, workload, fault_spec).

#include <gtest/gtest.h>

#include <string>

#include "src/engine/experiment.h"
#include "src/fault/fault_spec.h"
#include "src/storage/storage_engine.h"

namespace soap::engine {
namespace {

ExperimentConfig FaultyConfig(SchedulingStrategy strategy) {
  ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0);
  config.workload_options.spec.num_templates = 200;
  config.workload_options.spec.num_keys = 4'000;
  config.workload_options.utilization = 0.65;
  config.warmup_intervals = 2;
  config.measured_intervals = 10;
  config.deployment.strategy = strategy;
  config.seed = 5;
  // Repartitioning starts at interval 2 (t=40s); crash node 1 shortly
  // after, while the plan is deploying, and bring it back 15s later.
  config.fault_options.spec = "crash:node=1,at=45s,down=15s";
  return config;
}

class CrashMidRepartitionTest
    : public ::testing::TestWithParam<SchedulingStrategy> {};

TEST_P(CrashMidRepartitionTest, RecoversConsistentlyAndDrains) {
  ExperimentResult r = Experiment(FaultyConfig(GetParam())).Run();
  EXPECT_EQ(r.faults_crashes, 1u);
  EXPECT_TRUE(r.audit.ok()) << r.strategy_name << ": " << r.audit.ToString();
  EXPECT_TRUE(r.drained) << r.strategy_name;
  // Every 2PC protocol that started also finished, exactly once.
  EXPECT_EQ(r.tpc_stats.protocols_run,
            r.tpc_stats.committed + r.tpc_stats.aborted)
      << r.strategy_name;
  // The repartitioning still completes despite the crash window: the
  // schedulers pause while the node is down and resume after recovery.
  EXPECT_TRUE(r.plan_completed) << r.strategy_name;
  EXPECT_EQ(r.plan_ops_applied, r.plan_ops_total) << r.strategy_name;
}

TEST_P(CrashMidRepartitionTest, DeterministicAcrossRuns) {
  ExperimentResult a = Experiment(FaultyConfig(GetParam())).Run();
  ExperimentResult b = Experiment(FaultyConfig(GetParam())).Run();
  EXPECT_EQ(a.counters.committed_normal, b.counters.committed_normal);
  EXPECT_EQ(a.counters.aborted_normal, b.counters.aborted_normal);
  EXPECT_EQ(a.counters.aborts_node_crash, b.counters.aborts_node_crash);
  EXPECT_EQ(a.faults_msgs_dropped, b.faults_msgs_dropped);
  EXPECT_EQ(a.tpc_stats.resends, b.tpc_stats.resends);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, CrashMidRepartitionTest,
    ::testing::Values(SchedulingStrategy::kApplyAll,
                      SchedulingStrategy::kAfterAll,
                      SchedulingStrategy::kFeedback,
                      SchedulingStrategy::kPiggyback,
                      SchedulingStrategy::kHybrid),
    [](const ::testing::TestParamInfo<SchedulingStrategy>& info) {
      return std::string(StrategyName(info.param));
    });

TEST(CrashRecoveryTest, CrashCausesAbortsButNoInconsistency) {
  ExperimentResult r =
      Experiment(FaultyConfig(SchedulingStrategy::kHybrid)).Run();
  // The crash vaporized in-flight work: those transactions abort rather
  // than hang, and the counters say so.
  EXPECT_GT(r.counters.aborts_node_crash, 0u);
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
}

TEST(CrashRecoveryTest, MessageLossOnTopOfCrashStillConsistent) {
  ExperimentConfig config = FaultyConfig(SchedulingStrategy::kHybrid);
  config.fault_options.spec = "crash:node=1,at=45s,down=15s;drop:p=0.01";
  ExperimentResult r = Experiment(config).Run();
  EXPECT_GT(r.faults_msgs_dropped, 0u);
  EXPECT_GT(r.tpc_stats.resends, 0u);
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.tpc_stats.protocols_run,
            r.tpc_stats.committed + r.tpc_stats.aborted);
}

TEST(CrashRecoveryTest, PermanentCrashStillDrains) {
  // down=0: node 3 never comes back. The run cannot finish the plan
  // (node 3 owns a fifth of it) but must still terminate, abort cleanly
  // and keep the surviving nodes consistent.
  ExperimentConfig config = FaultyConfig(SchedulingStrategy::kApplyAll);
  config.measured_intervals = 6;
  config.fault_options.spec = "crash:node=3,at=45s,down=0";
  config.drain_cap = Minutes(5);
  ExperimentResult r = Experiment(config).Run();
  EXPECT_EQ(r.faults_crashes, 1u);
  EXPECT_TRUE(r.drained) << "queued work must abort, not hang";
  EXPECT_EQ(r.tpc_stats.protocols_run,
            r.tpc_stats.committed + r.tpc_stats.aborted);
}

TEST(CrashRecoveryTest, BadSpecFailsTheRunUpFront) {
  ExperimentConfig config = FaultyConfig(SchedulingStrategy::kHybrid);
  config.fault_options.spec = "crash:node=banana";
  ExperimentResult r = Experiment(config).Run();
  EXPECT_FALSE(r.audit.ok());
}

TEST(CrashRecoveryTest, SecondCrashDuringReplayRestartsFromCheckpoint) {
  // Node 1 restarts at t=70s and starts its WAL replay (>= 50ms of fixed
  // recovery cost). The second crash lands 20ms into that window: it must
  // vaporise the in-flight replay, bump the recovery epoch, and the next
  // restart must replay again from the checkpoint image — not resume a
  // half-applied recovery. The checker's wal_idempotent sweep then proves
  // the recovered table matches checkpoint + WAL.
  ExperimentConfig config = FaultyConfig(SchedulingStrategy::kHybrid);
  config.fault_options.spec =
      "crash:node=1,at=60s,down=10s;crash:node=1,at=70020ms,down=10s";
  config.check.enabled = true;
  ExperimentResult r = Experiment(config).Run();
  EXPECT_EQ(r.faults_crashes, 2u);
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.check_report.ok()) << r.check_report.ToString();
  EXPECT_GT(r.invariant_checks, 0u);
  EXPECT_EQ(r.tpc_stats.protocols_run,
            r.tpc_stats.committed + r.tpc_stats.aborted);
}

// cc-mode matrix: the crash/recovery path holds under --cc=mvcc too.
// Snapshot reads stay consistent across the crash window and the checker
// verifies snapshot isolation over the whole history.
TEST(CrashRecoveryTest, MvccCrashRecoveryChecksCleanAndDrains) {
  ExperimentConfig config = FaultyConfig(SchedulingStrategy::kHybrid);
  config.cluster.isolation = cluster::IsolationLevel::kSerializable;
  config.cluster.cc = mvcc::ConcurrencyControl::kMvcc;
  config.check.enabled = true;
  ExperimentResult r = Experiment(config).Run();
  EXPECT_TRUE(r.mvcc_enabled);
  EXPECT_EQ(r.faults_crashes, 1u);
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.check_report.ok()) << r.check_report.ToString();
  EXPECT_GT(r.check_report.snapshot_reads_checked, 0u);
  EXPECT_EQ(r.tpc_stats.protocols_run,
            r.tpc_stats.committed + r.tpc_stats.aborted);
}

TEST(CrashRecoveryTest, MvccCrashRunIsDeterministic) {
  auto mvcc_config = [] {
    ExperimentConfig config = FaultyConfig(SchedulingStrategy::kHybrid);
    config.cluster.isolation = cluster::IsolationLevel::kSerializable;
    config.cluster.cc = mvcc::ConcurrencyControl::kMvcc;
    return config;
  };
  ExperimentResult a = Experiment(mvcc_config()).Run();
  ExperimentResult b = Experiment(mvcc_config()).Run();
  EXPECT_EQ(a.counters.committed_normal, b.counters.committed_normal);
  EXPECT_EQ(a.counters.aborts_write_conflict,
            b.counters.aborts_write_conflict);
  EXPECT_EQ(a.counters.aborts_node_crash, b.counters.aborts_node_crash);
  EXPECT_EQ(a.mvcc_versions_live, b.mvcc_versions_live);
  EXPECT_EQ(a.mvcc_gc_pruned, b.mvcc_gc_pruned);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

// Storage-level replay equivalence: after Checkpoint + more mutations,
// RecoverFromWal reproduces exactly the pre-crash table (satellite (b):
// replay starts from the checkpoint snapshot, not an empty table).
TEST(CrashRecoveryTest, RecoverFromWalStartsAtCheckpoint) {
  storage::StorageEngine engine(/*partition_id=*/0);
  for (uint64_t k = 0; k < 50; ++k) {
    storage::Tuple t;
    t.key = k;
    t.content = static_cast<int64_t>(k);
    ASSERT_TRUE(engine.ApplyInsert(1, t).ok());
  }
  engine.Checkpoint();  // truncates the WAL
  ASSERT_TRUE(engine.ApplyUpdate(2, 7, 700).ok());
  ASSERT_TRUE(engine.ApplyErase(2, 9).ok());
  const size_t size_before = engine.table().size();

  ASSERT_TRUE(engine.RecoverFromWal().ok());
  EXPECT_EQ(engine.table().size(), size_before);
  Result<storage::Tuple> updated = engine.table().Get(7);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->content, 700);
  EXPECT_FALSE(engine.table().Get(9).ok());
  // Tuple 3 predates the truncation: only the checkpoint still has it.
  EXPECT_TRUE(engine.table().Get(3).ok());
}

}  // namespace
}  // namespace soap::engine
