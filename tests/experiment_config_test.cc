// ExperimentConfig: the grouped sub-struct API, Validate()'s rejection of
// inconsistent combinations (table-driven), and the deprecated flat-name
// alias shim — reads and writes through the old spellings must hit the
// same storage as the sub-structs, including across copies and moves.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/experiment.h"

namespace soap::engine {
namespace {

TEST(ExperimentConfigTest, DefaultConfigValidates) {
  ExperimentConfig config;
  EXPECT_TRUE(config.Validate().ok());
}

struct RejectCase {
  const char* name;
  std::function<void(ExperimentConfig*)> mutate;
  const char* expect_substring;
};

class ValidateRejectsTest : public ::testing::TestWithParam<RejectCase> {};

TEST_P(ValidateRejectsTest, RejectsInvalidCombination) {
  ExperimentConfig config;
  GetParam().mutate(&config);
  Status s = config.Validate();
  ASSERT_FALSE(s.ok()) << GetParam().name;
  EXPECT_NE(s.ToString().find(GetParam().expect_substring),
            std::string::npos)
      << GetParam().name << ": got \"" << s.ToString() << "\"";
}

INSTANTIATE_TEST_SUITE_P(
    Combinations, ValidateRejectsTest,
    ::testing::Values(
        RejectCase{"zero_interval_length",
                   [](ExperimentConfig* c) { c->interval_length = 0; },
                   "interval_length"},
        RejectCase{"negative_utilization",
                   [](ExperimentConfig* c) {
                     c->workload_options.utilization = -0.5;
                   },
                   "utilization"},
        RejectCase{"zero_history_window",
                   [](ExperimentConfig* c) {
                     c->workload_options.history_window = 0;
                   },
                   "history_window"},
        RejectCase{"replay_with_drift_phases",
                   [](ExperimentConfig* c) {
                     c->workload_options.replay_trace_path = "/tmp/t.trace";
                     c->workload_options.spec.phases.push_back(
                         workload::DriftPhase{});
                   },
                   "replay_trace_path"},
        RejectCase{"record_and_replay",
                   [](ExperimentConfig* c) {
                     c->workload_options.record_trace_path = "/tmp/a.trace";
                     c->workload_options.replay_trace_path = "/tmp/b.trace";
                   },
                   "mutually exclusive"},
        RejectCase{"trace_out_with_sampling_off",
                   [](ExperimentConfig* c) {
                     c->obs.trace_out = "/tmp/trace.json";
                     c->obs.trace_sample = 0;
                   },
                   "trace_sample"},
        RejectCase{"disturbance_fraction_over_one",
                   [](ExperimentConfig* c) {
                     c->fault_options.disturbance.enabled = true;
                     c->fault_options.disturbance.fraction = 1.5;
                     c->fault_options.disturbance.start_interval = 1;
                     c->fault_options.disturbance.end_interval = 2;
                   },
                   "fraction"},
        RejectCase{"disturbance_empty_window",
                   [](ExperimentConfig* c) {
                     c->fault_options.disturbance.enabled = true;
                     c->fault_options.disturbance.fraction = 0.5;
                     c->fault_options.disturbance.start_interval = 3;
                     c->fault_options.disturbance.end_interval = 3;
                   },
                   "window"},
        RejectCase{"disturbance_node_out_of_range",
                   [](ExperimentConfig* c) {
                     c->fault_options.disturbance.enabled = true;
                     c->fault_options.disturbance.fraction = 0.5;
                     c->fault_options.disturbance.start_interval = 1;
                     c->fault_options.disturbance.end_interval = 2;
                     c->fault_options.disturbance.node = 99;
                   },
                   "out of range"},
        RejectCase{"malformed_fault_spec",
                   [](ExperimentConfig* c) {
                     c->fault_options.spec = "crash:node=nonsense";
                   },
                   "nonsense"},
        RejectCase{"replica_single_copy",
                   [](ExperimentConfig* c) {
                     c->replicas.enabled = true;
                     c->replicas.max_copies = 1;
                   },
                   "max_copies"},
        RejectCase{"replica_copies_exceed_cluster",
                   [](ExperimentConfig* c) {
                     c->replicas.enabled = true;
                     c->replicas.max_copies = c->cluster.num_nodes + 1;
                   },
                   "cluster"},
        RejectCase{"replica_nonpositive_ratio",
                   [](ExperimentConfig* c) {
                     c->replicas.enabled = true;
                     c->replicas.min_read_write_ratio = 0.0;
                   },
                   "min_read_write_ratio"},
        RejectCase{"replica_split_threshold_out_of_range",
                   [](ExperimentConfig* c) {
                     c->replicas.enabled = true;
                     c->replicas.split_threshold = 1.0;
                   },
                   "split_threshold"},
        RejectCase{"replica_negative_promotion_delay",
                   [](ExperimentConfig* c) {
                     c->replicas.enabled = true;
                     c->replicas.promotion_delay = -1;
                   },
                   "promotion_delay"},
        RejectCase{"replicate_read_heavy_without_replicas",
                   [](ExperimentConfig* c) {
                     c->planner_options.builder.replicate_read_heavy = true;
                   },
                   "replicas.enabled"}),
    [](const ::testing::TestParamInfo<RejectCase>& info) {
      return std::string(info.param.name);
    });

// --- Deprecated alias shim -------------------------------------------------

TEST(ExperimentConfigTest, AliasesReadAndWriteSubStructStorage) {
  ExperimentConfig config;
  // Write through the old flat names, read through the sub-structs.
  config.utilization = 0.8;
  config.strategy = SchedulingStrategy::kFeedback;
  config.fault_spec = "crash:node=1,at=45s,down=15s";
  config.history_window = 7;
  EXPECT_DOUBLE_EQ(config.workload_options.utilization, 0.8);
  EXPECT_EQ(config.deployment.strategy, SchedulingStrategy::kFeedback);
  EXPECT_EQ(config.fault_options.spec, "crash:node=1,at=45s,down=15s");
  EXPECT_EQ(config.workload_options.history_window, 7u);
  // And the other direction.
  config.workload_options.spec.num_keys = 123;
  EXPECT_EQ(config.workload.num_keys, 123u);
  config.planner_options.enabled = true;
  EXPECT_TRUE(config.planner.enabled);
}

TEST(ExperimentConfigTest, CopyRebindsAliasesToTheCopy) {
  ExperimentConfig a;
  a.utilization = 0.9;
  ExperimentConfig b = a;
  // The copy has the value...
  EXPECT_DOUBLE_EQ(b.utilization, 0.9);
  // ...and its aliases point into itself, not into `a`.
  b.utilization = 0.4;
  EXPECT_DOUBLE_EQ(b.workload_options.utilization, 0.4);
  EXPECT_DOUBLE_EQ(a.workload_options.utilization, 0.9);
  a.strategy = SchedulingStrategy::kPiggyback;
  EXPECT_NE(b.deployment.strategy, SchedulingStrategy::kPiggyback);
}

TEST(ExperimentConfigTest, AssignmentCopiesValuesKeepsOwnAliases) {
  ExperimentConfig a;
  a.workload.num_templates = 77;
  a.replicas.enabled = true;
  ExperimentConfig b;
  b = a;
  EXPECT_EQ(b.workload.num_templates, 77u);
  EXPECT_TRUE(b.replicas.enabled);
  b.workload.num_templates = 11;
  EXPECT_EQ(a.workload.num_templates, 77u);
}

TEST(ExperimentConfigTest, MoveKeepsAliasIntegrity) {
  ExperimentConfig a;
  a.record_trace_path = "/tmp/record.trace";
  ExperimentConfig b = std::move(a);
  EXPECT_EQ(b.workload_options.record_trace_path, "/tmp/record.trace");
  b.record_trace_path = "/tmp/other.trace";
  EXPECT_EQ(b.workload_options.record_trace_path, "/tmp/other.trace");
}

TEST(ExperimentConfigTest, RunSurfacesValidationFailure) {
  ExperimentConfig config;
  config.interval_length = 0;
  ExperimentResult r = Experiment(config).Run();
  EXPECT_FALSE(r.audit.ok());
  EXPECT_NE(r.audit.ToString().find("interval_length"), std::string::npos);
}

}  // namespace
}  // namespace soap::engine
