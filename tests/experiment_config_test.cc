// ExperimentConfig: the grouped sub-struct API and Validate()'s rejection
// of inconsistent combinations (table-driven), including the LionOptions
// constraints. (The deprecated flat-name alias shim was removed after one
// release; every call site addresses the sub-structs directly.)

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/engine/experiment.h"

namespace soap::engine {
namespace {

TEST(ExperimentConfigTest, DefaultConfigValidates) {
  ExperimentConfig config;
  EXPECT_TRUE(config.Validate().ok());
}

struct RejectCase {
  const char* name;
  std::function<void(ExperimentConfig*)> mutate;
  const char* expect_substring;
};

class ValidateRejectsTest : public ::testing::TestWithParam<RejectCase> {};

TEST_P(ValidateRejectsTest, RejectsInvalidCombination) {
  ExperimentConfig config;
  GetParam().mutate(&config);
  Status s = config.Validate();
  ASSERT_FALSE(s.ok()) << GetParam().name;
  EXPECT_NE(s.ToString().find(GetParam().expect_substring),
            std::string::npos)
      << GetParam().name << ": got \"" << s.ToString() << "\"";
}

INSTANTIATE_TEST_SUITE_P(
    Combinations, ValidateRejectsTest,
    ::testing::Values(
        RejectCase{"zero_interval_length",
                   [](ExperimentConfig* c) { c->interval_length = 0; },
                   "interval_length"},
        RejectCase{"negative_utilization",
                   [](ExperimentConfig* c) {
                     c->workload_options.utilization = -0.5;
                   },
                   "utilization"},
        RejectCase{"zero_history_window",
                   [](ExperimentConfig* c) {
                     c->workload_options.history_window = 0;
                   },
                   "history_window"},
        RejectCase{"replay_with_drift_phases",
                   [](ExperimentConfig* c) {
                     c->workload_options.replay_trace_path = "/tmp/t.trace";
                     c->workload_options.spec.phases.push_back(
                         workload::DriftPhase{});
                   },
                   "replay_trace_path"},
        RejectCase{"record_and_replay",
                   [](ExperimentConfig* c) {
                     c->workload_options.record_trace_path = "/tmp/a.trace";
                     c->workload_options.replay_trace_path = "/tmp/b.trace";
                   },
                   "mutually exclusive"},
        RejectCase{"trace_out_with_sampling_off",
                   [](ExperimentConfig* c) {
                     c->obs.trace_out = "/tmp/trace.json";
                     c->obs.trace_sample = 0;
                   },
                   "trace_sample"},
        RejectCase{"disturbance_fraction_over_one",
                   [](ExperimentConfig* c) {
                     c->fault_options.disturbance.enabled = true;
                     c->fault_options.disturbance.fraction = 1.5;
                     c->fault_options.disturbance.start_interval = 1;
                     c->fault_options.disturbance.end_interval = 2;
                   },
                   "fraction"},
        RejectCase{"disturbance_empty_window",
                   [](ExperimentConfig* c) {
                     c->fault_options.disturbance.enabled = true;
                     c->fault_options.disturbance.fraction = 0.5;
                     c->fault_options.disturbance.start_interval = 3;
                     c->fault_options.disturbance.end_interval = 3;
                   },
                   "window"},
        RejectCase{"disturbance_node_out_of_range",
                   [](ExperimentConfig* c) {
                     c->fault_options.disturbance.enabled = true;
                     c->fault_options.disturbance.fraction = 0.5;
                     c->fault_options.disturbance.start_interval = 1;
                     c->fault_options.disturbance.end_interval = 2;
                     c->fault_options.disturbance.node = 99;
                   },
                   "out of range"},
        RejectCase{"malformed_fault_spec",
                   [](ExperimentConfig* c) {
                     c->fault_options.spec = "crash:node=nonsense";
                   },
                   "nonsense"},
        RejectCase{"replica_single_copy",
                   [](ExperimentConfig* c) {
                     c->replicas.enabled = true;
                     c->replicas.max_copies = 1;
                   },
                   "max_copies"},
        RejectCase{"replica_copies_exceed_cluster",
                   [](ExperimentConfig* c) {
                     c->replicas.enabled = true;
                     c->replicas.max_copies = c->cluster.num_nodes + 1;
                   },
                   "cluster"},
        RejectCase{"replica_nonpositive_ratio",
                   [](ExperimentConfig* c) {
                     c->replicas.enabled = true;
                     c->replicas.min_read_write_ratio = 0.0;
                   },
                   "min_read_write_ratio"},
        RejectCase{"replica_split_threshold_out_of_range",
                   [](ExperimentConfig* c) {
                     c->replicas.enabled = true;
                     c->replicas.split_threshold = 1.0;
                   },
                   "split_threshold"},
        RejectCase{"replica_negative_promotion_delay",
                   [](ExperimentConfig* c) {
                     c->replicas.enabled = true;
                     c->replicas.promotion_delay = -1;
                   },
                   "promotion_delay"},
        RejectCase{"replicate_read_heavy_without_replicas",
                   [](ExperimentConfig* c) {
                     c->planner_options.builder.replicate_read_heavy = true;
                   },
                   "replicas.enabled"},
        RejectCase{"lion_negative_budget",
                   [](ExperimentConfig* c) {
                     c->lion.replica_budget = -1;
                   },
                   "replica_budget"},
        RejectCase{"lion_unknown_evict_policy",
                   [](ExperimentConfig* c) { c->lion.evict = "fifo"; },
                   "evict"},
        RejectCase{"lion_shift_threshold_zero",
                   [](ExperimentConfig* c) {
                     c->lion.shift_threshold = 0.0;
                   },
                   "shift_threshold"},
        RejectCase{"lion_shift_threshold_above_one",
                   [](ExperimentConfig* c) {
                     c->lion.shift_threshold = 1.5;
                   },
                   "shift_threshold"},
        RejectCase{"lion_without_replicas",
                   [](ExperimentConfig* c) { c->lion.enabled = true; },
                   "replicas.enabled"},
        RejectCase{"lion_without_planner",
                   [](ExperimentConfig* c) {
                     c->lion.enabled = true;
                     c->replicas.enabled = true;
                   },
                   "planner.enabled"},
        RejectCase{"double_primary_break_without_lion",
                   [](ExperimentConfig* c) {
                     c->check.break_mode = "double_primary";
                   },
                   "--lion"}),
    [](const ::testing::TestParamInfo<RejectCase>& info) {
      return std::string(info.param.name);
    });

TEST(ExperimentConfigTest, ValueSemanticsCopyAndAssign) {
  ExperimentConfig a;
  a.workload_options.utilization = 0.9;
  a.lion.enabled = true;
  a.lion.replica_budget = 17;
  ExperimentConfig b = a;
  EXPECT_DOUBLE_EQ(b.workload_options.utilization, 0.9);
  EXPECT_EQ(b.lion.replica_budget, 17);
  b.workload_options.utilization = 0.4;
  EXPECT_DOUBLE_EQ(a.workload_options.utilization, 0.9);
}

TEST(ExperimentConfigTest, RunSurfacesValidationFailure) {
  ExperimentConfig config;
  config.interval_length = 0;
  ExperimentResult r = Experiment(config).Run();
  EXPECT_FALSE(r.audit.ok());
  EXPECT_NE(r.audit.ToString().find("interval_length"), std::string::npos);
}

}  // namespace
}  // namespace soap::engine
