#include "src/engine/experiment.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace soap::engine {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0);
  config.workload_options.spec.num_templates = 200;
  config.workload_options.spec.num_keys = 4'000;
  config.workload_options.utilization = 0.65;
  config.warmup_intervals = 2;
  config.measured_intervals = 12;
  config.deployment.strategy = SchedulingStrategy::kHybrid;
  config.seed = 5;
  return config;
}

TEST(ExperimentTest, SeriesHaveOnePointPerInterval) {
  ExperimentConfig config = TinyConfig();
  ExperimentResult r = Experiment(config).Run();
  const size_t n = config.warmup_intervals + config.measured_intervals;
  EXPECT_EQ(r.rep_rate.size(), n);
  EXPECT_EQ(r.throughput.size(), n);
  EXPECT_EQ(r.latency_ms.size(), n);
  EXPECT_EQ(r.failure_rate.size(), n);
  EXPECT_EQ(r.queue_length.size(), n);
  EXPECT_EQ(r.utilization.size(), n);
}

TEST(ExperimentTest, RepRateZeroDuringWarmup) {
  ExperimentResult r = Experiment(TinyConfig()).Run();
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(r.rep_rate.at(i), 0.0);
  }
}

TEST(ExperimentTest, RepRateMonotonicallyNonDecreasing) {
  ExperimentResult r = Experiment(TinyConfig()).Run();
  for (size_t i = 1; i < r.rep_rate.size(); ++i) {
    EXPECT_GE(r.rep_rate.at(i), r.rep_rate.at(i - 1));
  }
  EXPECT_LE(r.rep_rate.Max(), 1.0);
}

TEST(ExperimentTest, CalibrationMatchesUtilizationTarget) {
  // Measured utilisation during warmup (pre-repartitioning) must track
  // the configured target.
  ExperimentConfig config = TinyConfig();
  config.warmup_intervals = 8;
  config.measured_intervals = 2;
  ExperimentResult r = Experiment(config).Run();
  double warmup_util = 0.0;
  for (uint32_t i = 1; i < 8; ++i) warmup_util += r.utilization.at(i);
  warmup_util /= 7.0;
  EXPECT_NEAR(warmup_util, 0.65, 0.08);
}

TEST(ExperimentTest, ThroughputMatchesArrivalsWhenUnderloaded) {
  ExperimentResult r = Experiment(TinyConfig()).Run();
  // At 65% load with the plan applied, committed/min ~= arrivals/min.
  EXPECT_NEAR(r.throughput.TailMean(4), r.arrival_rate_txn_s * 60.0,
              r.arrival_rate_txn_s * 60.0 * 0.1);
}

TEST(ExperimentTest, FailureRateBoundedZeroOne) {
  ExperimentResult r = Experiment(TinyConfig()).Run();
  for (double f : r.failure_rate.values()) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(ExperimentTest, AuditCleanAndDrained) {
  ExperimentResult r = Experiment(TinyConfig()).Run();
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.plan_completed);
  EXPECT_EQ(r.plan_ops_applied, r.plan_ops_total);
}

TEST(ExperimentTest, CountersAddUp) {
  ExperimentResult r = Experiment(TinyConfig()).Run();
  const auto& c = r.counters;
  // Every submitted normal transaction eventually commits or aborts (the
  // run drains fully).
  EXPECT_EQ(c.submitted_normal, c.committed_normal + c.aborted_normal);
  EXPECT_EQ(c.submitted_repartition,
            c.committed_repartition + c.aborted_repartition);
  EXPECT_EQ(c.aborted_normal + c.aborted_repartition,
            c.aborts_deadlock + c.aborts_lock_timeout +
                c.aborts_queue_timeout + c.aborts_vote);
}

TEST(ExperimentTest, AlphaScalesPlanSize) {
  ExperimentConfig a = TinyConfig();
  a.workload_options.spec.alpha = 1.0;
  ExperimentConfig b = TinyConfig();
  b.workload_options.spec.alpha = 0.2;
  ExperimentResult ra = Experiment(a).Run();
  ExperimentResult rb = Experiment(b).Run();
  EXPECT_NEAR(static_cast<double>(rb.plan_ops_total),
              static_cast<double>(ra.plan_ops_total) * 0.2,
              static_cast<double>(ra.plan_ops_total) * 0.02);
  // Lower alpha -> cheaper initial mix -> more transactions submitted for
  // the same utilisation (the paper's observation in §4.2).
  EXPECT_GT(rb.arrival_rate_txn_s, ra.arrival_rate_txn_s);
}

TEST(ExperimentTest, SummaryMentionsStrategy) {
  ExperimentResult r = Experiment(TinyConfig()).Run();
  EXPECT_NE(r.Summary().find("Hybrid"), std::string::npos);
}

TEST(ExperimentTest, MakeSchedulerCoversAllStrategies) {
  for (auto s : {SchedulingStrategy::kApplyAll, SchedulingStrategy::kAfterAll,
                 SchedulingStrategy::kFeedback,
                 SchedulingStrategy::kPiggyback,
                 SchedulingStrategy::kHybrid}) {
    auto scheduler = MakeScheduler(s, {}, {});
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->name(), StrategyName(s));
  }
}

TEST(ExperimentTest, TraceReplayReproducesRunExactly) {
  const std::string path = ::testing::TempDir() + "/soap_exp_trace.txt";
  ExperimentConfig config = TinyConfig();
  config.workload_options.record_trace_path = path;
  ExperimentResult original = Experiment(config).Run();

  ExperimentConfig replay = TinyConfig();
  replay.workload_options.replay_trace_path = path;
  replay.seed = 999;  // generator seed is irrelevant under replay
  ExperimentResult replayed = Experiment(replay).Run();

  ASSERT_EQ(original.throughput.size(), replayed.throughput.size());
  for (size_t i = 0; i < original.throughput.size(); ++i) {
    EXPECT_DOUBLE_EQ(original.throughput.at(i), replayed.throughput.at(i));
    EXPECT_DOUBLE_EQ(original.rep_rate.at(i), replayed.rep_rate.at(i));
  }
  std::remove(path.c_str());
}

TEST(ExperimentTest, ReplayMissingTraceFailsCleanly) {
  ExperimentConfig config = TinyConfig();
  config.workload_options.replay_trace_path = "/no/such/file.trace";
  ExperimentResult r = Experiment(config).Run();
  EXPECT_FALSE(r.audit.ok());
}

TEST(ExperimentTest, P99AtLeastMeanLatency) {
  ExperimentResult r = Experiment(TinyConfig()).Run();
  for (size_t i = 0; i < r.latency_ms.size(); ++i) {
    if (r.latency_ms.at(i) > 0) {
      EXPECT_GE(r.latency_p99_ms.at(i), r.latency_ms.at(i) * 0.5) << i;
    }
  }
}

TEST(ExperimentTest, DifferentSeedsDifferentTraces) {
  ExperimentConfig a = TinyConfig();
  ExperimentConfig b = TinyConfig();
  b.seed = 6;
  ExperimentResult ra = Experiment(a).Run();
  ExperimentResult rb = Experiment(b).Run();
  bool any_difference = false;
  for (size_t i = 0; i < ra.throughput.size(); ++i) {
    if (ra.throughput.at(i) != rb.throughput.at(i)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace soap::engine
