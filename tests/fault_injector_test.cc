#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace soap::fault {
namespace {

FaultSpec MustParse(const std::string& text) {
  Result<FaultSpec> spec = FaultSpec::Parse(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return *spec;
}

TEST(FaultInjectorTest, CrashAndRestartFireAtScheduledTimes) {
  sim::Simulator sim;
  FaultInjector inj(&sim, MustParse("crash:node=2,at=10s,down=5s"), 1);
  SimTime crashed_at = -1;
  SimTime restarted_at = -1;
  inj.set_on_crash([&](sim::NodeId n) {
    EXPECT_EQ(n, 2u);
    EXPECT_TRUE(inj.NodeDown(2));
    crashed_at = sim.Now();
  });
  inj.set_on_restart([&](sim::NodeId n) {
    EXPECT_EQ(n, 2u);
    EXPECT_FALSE(inj.NodeDown(2));
    restarted_at = sim.Now();
  });
  inj.Start();
  sim.Run();
  EXPECT_EQ(crashed_at, Seconds(10));
  EXPECT_EQ(restarted_at, Seconds(15));
  EXPECT_EQ(inj.stats().crashes, 1u);
  EXPECT_EQ(inj.stats().restarts, 1u);
}

TEST(FaultInjectorTest, DownZeroNeverRestarts) {
  sim::Simulator sim;
  FaultInjector inj(&sim, MustParse("crash:node=1,at=1s,down=0"), 1);
  inj.Start();
  sim.Run();
  EXPECT_TRUE(inj.NodeDown(1));
  EXPECT_EQ(inj.stats().restarts, 0u);
}

TEST(FaultInjectorTest, MessagesFromDownNodeAreDropped) {
  sim::Simulator sim;
  FaultInjector inj(&sim, MustParse("crash:node=0,at=0,down=0"), 1);
  inj.Start();
  sim.Run();
  sim::MsgFate fate = inj.OnMessage(0, 1, sim::MsgClass::kControl);
  EXPECT_EQ(fate.action, sim::MsgFate::Action::kDrop);
}

TEST(FaultInjectorTest, ControlToDownNodeParksDataDrops) {
  sim::Simulator sim;
  FaultInjector inj(&sim, MustParse("crash:node=3,at=0,down=0"), 1);
  inj.Start();
  sim.Run();
  EXPECT_EQ(inj.OnMessage(1, 3, sim::MsgClass::kControl).action,
            sim::MsgFate::Action::kPark);
  EXPECT_EQ(inj.OnMessage(1, 3, sim::MsgClass::kData).action,
            sim::MsgFate::Action::kDrop);
}

TEST(FaultInjectorTest, ParkedDeliveriesReplayAfterRestartInOrder) {
  sim::Simulator sim;
  FaultInjector inj(&sim, MustParse("crash:node=2,at=1s,down=4s"), 1);
  std::vector<int> delivered;
  inj.set_on_crash([&](sim::NodeId) {
    // While down, park two control deliveries.
    inj.Park(2, [&] { delivered.push_back(1); });
    inj.Park(2, [&] { delivered.push_back(2); });
  });
  SimTime restarted_at = -1;
  inj.set_on_restart([&](sim::NodeId) { restarted_at = sim.Now(); });
  inj.Start();
  sim.Run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], 1);
  EXPECT_EQ(delivered[1], 2);
  EXPECT_EQ(restarted_at, Seconds(5));
  EXPECT_EQ(inj.stats().msgs_parked, 2u);
  EXPECT_EQ(inj.stats().msgs_redelivered, 2u);
}

TEST(FaultInjectorTest, DropRuleIsProbabilisticAndDeterministic) {
  auto count_drops = [](uint64_t seed) {
    sim::Simulator sim;
    FaultInjector inj(&sim, MustParse("drop:p=0.5"), seed);
    inj.Start();
    int drops = 0;
    for (int i = 0; i < 1000; ++i) {
      if (inj.OnMessage(0, 1, sim::MsgClass::kControl).action ==
          sim::MsgFate::Action::kDrop) {
        ++drops;
      }
    }
    return drops;
  };
  const int a = count_drops(7);
  EXPECT_EQ(a, count_drops(7));   // same seed, same stream
  EXPECT_GT(a, 350);              // p=0.5 over 1000 draws
  EXPECT_LT(a, 650);
}

TEST(FaultInjectorTest, EdgeRestrictedDropLeavesOtherEdgesAlone) {
  sim::Simulator sim;
  FaultInjector inj(&sim, MustParse("drop:p=1.0,edge=1-3"), 7);
  inj.Start();
  EXPECT_EQ(inj.OnMessage(1, 3, sim::MsgClass::kControl).action,
            sim::MsgFate::Action::kDrop);
  EXPECT_EQ(inj.OnMessage(3, 1, sim::MsgClass::kControl).action,
            sim::MsgFate::Action::kDrop);
  EXPECT_EQ(inj.OnMessage(0, 2, sim::MsgClass::kControl).action,
            sim::MsgFate::Action::kDeliver);
}

TEST(FaultInjectorTest, PartitionCutsCrossGroupMessagesDuringWindow) {
  sim::Simulator sim;
  FaultInjector inj(&sim,
                    MustParse("partition:at=10s,for=20s,group=0-1"), 1);
  inj.Start();
  // Before the window: delivered.
  EXPECT_EQ(inj.OnMessage(0, 2, sim::MsgClass::kControl).action,
            sim::MsgFate::Action::kDeliver);
  sim.RunUntil(Seconds(15));
  // Inside: cross-group cut, intra-group fine.
  EXPECT_EQ(inj.OnMessage(0, 2, sim::MsgClass::kControl).action,
            sim::MsgFate::Action::kDrop);
  EXPECT_EQ(inj.OnMessage(0, 1, sim::MsgClass::kControl).action,
            sim::MsgFate::Action::kDeliver);
  EXPECT_EQ(inj.OnMessage(2, 4, sim::MsgClass::kControl).action,
            sim::MsgFate::Action::kDeliver);
  sim.RunUntil(Seconds(31));
  // After: healed.
  EXPECT_EQ(inj.OnMessage(0, 2, sim::MsgClass::kControl).action,
            sim::MsgFate::Action::kDeliver);
}

TEST(FaultInjectorTest, DelayRuleAddsLatencyDupOnlyDuplicatesControl) {
  sim::Simulator sim;
  FaultInjector inj(&sim, MustParse("delay:p=1.0,add=10ms;dup:p=1.0"), 1);
  inj.Start();
  sim::MsgFate control = inj.OnMessage(0, 1, sim::MsgClass::kControl);
  EXPECT_EQ(control.action, sim::MsgFate::Action::kDeliver);
  EXPECT_EQ(control.extra_delay, Millis(10));
  EXPECT_TRUE(control.duplicate);
  sim::MsgFate data = inj.OnMessage(0, 1, sim::MsgClass::kData);
  EXPECT_FALSE(data.duplicate);  // data is exactly-once
}

// End-to-end through Network: a dropped data message takes the on_drop
// path; a duplicated control message delivers twice.
TEST(FaultInjectorTest, NetworkIntegration) {
  sim::Simulator sim;
  sim::NetworkConfig nc;
  nc.jitter = 0;
  sim::Network net(&sim, nc);
  FaultInjector inj(&sim, MustParse("drop:p=1.0,edge=0-1;dup:p=1.0"), 1);
  net.set_fault_hooks(&inj);
  inj.Start();
  int delivered = 0;
  int dropped = 0;
  net.SendWithFailure(0, 1, 64, [&] { ++delivered; }, [&] { ++dropped; });
  int dup_delivered = 0;
  net.Send(2, 3, 64, [&] { ++dup_delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(dup_delivered, 2);
  EXPECT_EQ(inj.stats().msgs_dropped, 1u);
  EXPECT_EQ(inj.stats().msgs_duplicated, 1u);
}

}  // namespace
}  // namespace soap::fault
