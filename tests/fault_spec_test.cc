#include "src/fault/fault_spec.h"

#include <gtest/gtest.h>

namespace soap::fault {
namespace {

TEST(FaultSpecTest, EmptyStringParsesToEmptySpec) {
  Result<FaultSpec> spec = FaultSpec::Parse("");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->empty());
  EXPECT_EQ(spec->ToString(), "");
}

TEST(FaultSpecTest, ParsesCrashClause) {
  Result<FaultSpec> spec = FaultSpec::Parse("crash:node=2,at=120s,down=15s");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->crashes.size(), 1u);
  EXPECT_EQ(spec->crashes[0].node, 2u);
  EXPECT_EQ(spec->crashes[0].at, Seconds(120));
  EXPECT_EQ(spec->crashes[0].down, Seconds(15));
  EXPECT_FALSE(spec->empty());
}

TEST(FaultSpecTest, CrashDownZeroMeansNoRestart) {
  Result<FaultSpec> spec = FaultSpec::Parse("crash:node=0,at=5s,down=0");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->crashes[0].down, 0);
}

TEST(FaultSpecTest, ParsesDropWithEdge) {
  Result<FaultSpec> spec = FaultSpec::Parse("drop:p=0.01,edge=1-3");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->drops.size(), 1u);
  EXPECT_DOUBLE_EQ(spec->drops[0].p, 0.01);
  EXPECT_TRUE(spec->drops[0].Matches(1, 3));
  EXPECT_TRUE(spec->drops[0].Matches(3, 1));  // unordered pair
  EXPECT_FALSE(spec->drops[0].Matches(1, 2));
}

TEST(FaultSpecTest, ParsesDelayAndDup) {
  Result<FaultSpec> spec =
      FaultSpec::Parse("delay:p=0.05,add=10ms;dup:p=0.02");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->delays.size(), 1u);
  EXPECT_EQ(spec->delays[0].add, Millis(10));
  ASSERT_EQ(spec->dups.size(), 1u);
  EXPECT_DOUBLE_EQ(spec->dups[0].p, 0.02);
}

TEST(FaultSpecTest, ParsesPartition) {
  Result<FaultSpec> spec =
      FaultSpec::Parse("partition:at=100s,for=20s,group=0-1");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->partitions.size(), 1u);
  const PartitionEvent& ev = spec->partitions[0];
  EXPECT_EQ(ev.at, Seconds(100));
  EXPECT_EQ(ev.duration, Seconds(20));
  EXPECT_TRUE(ev.Separates(0, 2));
  EXPECT_TRUE(ev.Separates(4, 1));
  EXPECT_FALSE(ev.Separates(0, 1));  // both inside the group
  EXPECT_FALSE(ev.Separates(2, 3));  // both outside
}

TEST(FaultSpecTest, ParsesTuningClauses) {
  Result<FaultSpec> spec = FaultSpec::Parse(
      "tpc:prepare_to=1s,ack_to=2s,resends=5,backoff=1.5,jitter=50ms;"
      "retry:base=250ms,cap=10s;seed:7");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->tpc.prepare_timeout, Seconds(1));
  EXPECT_EQ(spec->tpc.ack_timeout, Seconds(2));
  EXPECT_EQ(spec->tpc.max_resends, 5u);
  EXPECT_DOUBLE_EQ(spec->tpc.backoff, 1.5);
  EXPECT_EQ(spec->tpc.jitter, Millis(50));
  EXPECT_EQ(spec->retry.base, Millis(250));
  EXPECT_EQ(spec->retry.cap, Seconds(10));
  EXPECT_EQ(spec->seed, 7u);
  // Tuning without any fault clause injects nothing.
  EXPECT_TRUE(spec->empty());
}

TEST(FaultSpecTest, DurationSuffixes) {
  Result<FaultSpec> spec =
      FaultSpec::Parse("crash:node=0,at=1m,down=500000");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->crashes[0].at, Minutes(1));
  EXPECT_EQ(spec->crashes[0].down, Micros(500000));  // bare = microseconds
}

TEST(FaultSpecTest, RoundTripsThroughToString) {
  const std::string text =
      "crash:node=2,at=120s,down=15s;drop:p=0.01,edge=1-3;"
      "delay:p=0.05,add=10ms;dup:p=0.02;partition:at=100s,for=20s,group=0-1;"
      "seed:9";
  Result<FaultSpec> spec = FaultSpec::Parse(text);
  ASSERT_TRUE(spec.ok());
  Result<FaultSpec> again = FaultSpec::Parse(spec->ToString());
  ASSERT_TRUE(again.ok()) << spec->ToString();
  EXPECT_EQ(again->ToString(), spec->ToString());
  EXPECT_EQ(again->crashes.size(), 1u);
  EXPECT_EQ(again->drops.size(), 1u);
  EXPECT_EQ(again->delays.size(), 1u);
  EXPECT_EQ(again->dups.size(), 1u);
  EXPECT_EQ(again->partitions.size(), 1u);
  EXPECT_EQ(again->seed, 9u);
}

TEST(FaultSpecTest, RejectsUnknownClause) {
  EXPECT_FALSE(FaultSpec::Parse("explode:now").ok());
}

TEST(FaultSpecTest, RejectsUnknownKey) {
  EXPECT_FALSE(FaultSpec::Parse("crash:node=1,when=5s").ok());
}

TEST(FaultSpecTest, RejectsBadProbability) {
  EXPECT_FALSE(FaultSpec::Parse("drop:p=1.5").ok());
  EXPECT_FALSE(FaultSpec::Parse("drop:p=-0.1").ok());
}

TEST(FaultSpecTest, RejectsDelayWithoutAdd) {
  EXPECT_FALSE(FaultSpec::Parse("delay:p=0.1").ok());
}

TEST(FaultSpecTest, RejectsPartitionWithoutWindow) {
  EXPECT_FALSE(FaultSpec::Parse("partition:at=10s,group=0-1").ok());
}

TEST(FaultSpecTest, RejectsGarbageNumbers) {
  EXPECT_FALSE(FaultSpec::Parse("crash:node=banana,at=1s").ok());
  EXPECT_FALSE(FaultSpec::Parse("drop:p=zero").ok());
}

}  // namespace
}  // namespace soap::fault
