// Unit-level tests of the feedback scheduler's mechanics: the low-priority
// window, PID-driven promotion/submission counts, the per-interval cap,
// and the hybrid PV coupling (piggybacked work suppresses submissions).

#include "src/core/feedback_scheduler.h"

#include <gtest/gtest.h>

#include "src/core/hybrid_scheduler.h"
#include "src/core/repartitioner.h"
#include "src/workload/generator.h"

namespace soap::core {
namespace {

class FeedbackTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kTemplates = 100;
  static constexpr uint64_t kKeys = 1000;

  FeedbackTest()
      : cluster_(&sim_, MakeClusterConfig()),
        tm_(&cluster_),
        catalog_(MakeSpec(), cluster_.num_nodes()),
        history_(kTemplates, 10) {
    for (uint64_t key = 0; key < kKeys; ++key) {
      storage::Tuple tuple;
      tuple.key = key;
      EXPECT_TRUE(
          cluster_.LoadTuple(tuple, catalog_.InitialPartitionOf(key)).ok());
    }
    for (int i = 0; i < 1000; ++i) {
      history_.Record(static_cast<uint32_t>(i % kTemplates));
    }
    history_.CloseInterval(Seconds(20));
  }

  static cluster::ClusterConfig MakeClusterConfig() {
    cluster::ClusterConfig c;
    c.num_keys = kKeys;
    c.network.jitter = 0;
    return c;
  }

  static workload::WorkloadSpec MakeSpec() {
    workload::WorkloadSpec s;
    s.distribution = workload::PopularityDist::kUniform;
    s.num_templates = kTemplates;
    s.num_keys = kKeys;
    s.alpha = 1.0;
    s.seed = 17;
    return s;
  }

  /// Builds a repartitioner around a FeedbackScheduler and returns the
  /// scheduler pointer (owned by the repartitioner).
  FeedbackScheduler* Setup(FeedbackConfig config,
                           std::unique_ptr<Repartitioner>* out) {
    auto scheduler = std::make_unique<FeedbackScheduler>(config);
    FeedbackScheduler* raw = scheduler.get();
    *out = std::make_unique<Repartitioner>(&cluster_, &tm_, &catalog_,
                                           &history_, std::move(scheduler));
    tm_.set_completion_callback(
        [r = out->get()](const txn::Transaction& t) { r->OnTxnComplete(t); });
    return raw;
  }

  IntervalStats StatsWith(Duration normal_work, Duration rep_work,
                          uint64_t piggybacked_ops = 0) {
    IntervalStats stats;
    stats.length = Seconds(20);
    stats.normal_work = normal_work;
    stats.repartition_work = rep_work;
    stats.piggybacked_ops_applied = piggybacked_ops;
    return stats;
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::TransactionManager tm_;
  workload::TemplateCatalog catalog_;
  workload::WorkloadHistory history_;
};

TEST_F(FeedbackTest, PlanReadyFillsLowWindowOnly) {
  FeedbackConfig config;
  config.low_priority_window = 8;
  std::unique_ptr<Repartitioner> rp;
  Setup(config, &rp);
  ASSERT_TRUE(rp->StartRepartitioning());
  // Exactly the window submitted, all at low priority. On this idle
  // system they dispatch immediately, so count queued + in-flight.
  EXPECT_EQ(tm_.counters().submitted_repartition, 8u);
  EXPECT_EQ(tm_.queue().CountByPriority(txn::TxnPriority::kLow) +
                tm_.inflight_low(),
            8u);
  EXPECT_EQ(tm_.inflight_normal_or_high(), 0u);
}

TEST_F(FeedbackTest, TickPromotesAccordingToController) {
  FeedbackConfig config;
  config.sp = 1.05;  // setpoint ratio 0.05
  config.low_priority_window = 16;
  std::unique_ptr<Repartitioner> rp;
  FeedbackScheduler* scheduler = Setup(config, &rp);
  ASSERT_TRUE(rp->StartRepartitioning());

  // One interval with pure normal work and zero repartition work:
  // error = 0.05, u = 0.05; expected count = u * normal_work / avg_cost.
  const Duration normal_work = Seconds(200);  // 2e8 us
  rp->OnIntervalTick(StatsWith(normal_work, 0));
  EXPECT_NEAR(scheduler->last_output(), 0.05, 1e-9);
  const uint64_t scheduled = scheduler->promoted_total() +
                             scheduler->submitted_normal_priority_total();
  EXPECT_GT(scheduled, 0u);
  // Roughly u * normal_work / avg_rep_cost transactions were scheduled
  // (bounded by the cap and the promotions available).
  EXPECT_LE(scheduled, 200u);
}

TEST_F(FeedbackTest, AtSetpointNoExtraSubmissions) {
  FeedbackConfig config;
  config.sp = 1.05;
  std::unique_ptr<Repartitioner> rp;
  FeedbackScheduler* scheduler = Setup(config, &rp);
  ASSERT_TRUE(rp->StartRepartitioning());
  // PV exactly at setpoint: error 0, pure P controller outputs 0.
  // 500 piggybacked migration units at 18 ms each = 9 s of repartition
  // work against 180 s of normal work: ratio exactly 0.05.
  rp->OnIntervalTick(StatsWith(Seconds(180), Seconds(9), 500));
  EXPECT_NEAR(scheduler->last_output(), 0.0, 1e-9);
  EXPECT_EQ(scheduler->promoted_total() +
                scheduler->submitted_normal_priority_total(),
            0u);
}

TEST_F(FeedbackTest, OvershootNeverSubmitsNegative) {
  FeedbackConfig config;
  config.sp = 1.05;
  std::unique_ptr<Repartitioner> rp;
  FeedbackScheduler* scheduler = Setup(config, &rp);
  ASSERT_TRUE(rp->StartRepartitioning());
  // PV far above setpoint: clamped at zero output, nothing scheduled.
  rp->OnIntervalTick(StatsWith(Seconds(100), Seconds(100), 20000));
  EXPECT_DOUBLE_EQ(scheduler->last_output(), 0.0);
  EXPECT_EQ(scheduler->promoted_total() +
                scheduler->submitted_normal_priority_total(),
            0u);
}

TEST_F(FeedbackTest, PerIntervalCapBindsSchedule) {
  FeedbackConfig config;
  config.sp = 2.0;  // enormous setpoint: wants everything at once
  config.max_txns_per_interval = 7;
  config.low_priority_window = 4;
  std::unique_ptr<Repartitioner> rp;
  FeedbackScheduler* scheduler = Setup(config, &rp);
  ASSERT_TRUE(rp->StartRepartitioning());
  rp->OnIntervalTick(StatsWith(Seconds(200), 0));
  EXPECT_EQ(scheduler->promoted_total() +
                scheduler->submitted_normal_priority_total(),
            7u);
}

TEST_F(FeedbackTest, WindowRefillsAfterPromotion) {
  FeedbackConfig config;
  config.sp = 1.2;
  config.low_priority_window = 6;
  std::unique_ptr<Repartitioner> rp;
  Setup(config, &rp);
  ASSERT_TRUE(rp->StartRepartitioning());
  const uint64_t before = tm_.counters().submitted_repartition;
  rp->OnIntervalTick(StatsWith(Seconds(200), 0));
  // Whatever was promoted, the refill submitted fresh low-priority
  // transactions to keep idle capacity covered.
  EXPECT_GT(tm_.counters().submitted_repartition, before);
}

TEST_F(FeedbackTest, FinishedSchedulerGoesQuiet) {
  FeedbackConfig config;
  std::unique_ptr<Repartitioner> rp;
  Setup(config, &rp);
  ASSERT_TRUE(rp->StartRepartitioning());
  sim_.Run();  // idle system: the low-priority stream drains the plan
  EXPECT_TRUE(rp->Finished());
  const uint64_t submitted = tm_.counters().submitted_repartition;
  rp->OnIntervalTick(StatsWith(Seconds(200), 0));
  EXPECT_EQ(tm_.counters().submitted_repartition, submitted);
}

TEST_F(FeedbackTest, HybridSuppressionViaPv) {
  // In Hybrid, piggybacked work counts into the PV, so a high measured
  // repartition ratio suppresses the feedback module's submissions —
  // Section 3.5's coupling, testable directly through the stats.
  HybridConfig config;
  config.feedback.sp = 1.05;
  auto scheduler = std::make_unique<HybridScheduler>(config);
  HybridScheduler* raw = scheduler.get();
  auto rp = std::make_unique<Repartitioner>(&cluster_, &tm_, &catalog_,
                                            &history_, std::move(scheduler));
  ASSERT_TRUE(rp->StartRepartitioning());
  // Piggybacked migrations produced plenty of repartition work this
  // interval: PV far above 0.05 -> no standalone submissions.
  rp->OnIntervalTick(StatsWith(Seconds(100), Seconds(20), 5000));
  EXPECT_EQ(raw->feedback().promoted_total() +
                raw->feedback().submitted_normal_priority_total(),
            0u);
  // A quiet interval later, the module resumes submitting.
  rp->OnIntervalTick(StatsWith(Seconds(100), 0, 0));
  EXPECT_GT(raw->feedback().promoted_total() +
                raw->feedback().submitted_normal_priority_total(),
            0u);
}

}  // namespace
}  // namespace soap::core
