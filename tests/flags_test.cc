#include "src/common/flags.h"

#include "src/common/series.h"
#include "src/engine/flag_table.h"

#include <gtest/gtest.h>

namespace soap {
namespace {

Flags MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  Result<Flags> r =
      Flags::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(FlagsTest, EqualsForm) {
  Flags f = MustParse({"--name=value", "--n=7"});
  EXPECT_EQ(f.GetString("name"), "value");
  EXPECT_EQ(f.GetInt("n"), 7);
}

TEST(FlagsTest, SpaceForm) {
  Flags f = MustParse({"--alpha", "0.6", "--strategy", "hybrid"});
  EXPECT_DOUBLE_EQ(f.GetDouble("alpha"), 0.6);
  EXPECT_EQ(f.GetString("strategy"), "hybrid");
}

TEST(FlagsTest, BooleanForms) {
  Flags f = MustParse({"--chart", "--verbose=true", "--quiet=0"});
  EXPECT_TRUE(f.GetBool("chart"));
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_FALSE(f.GetBool("quiet"));
  EXPECT_FALSE(f.GetBool("absent"));
  EXPECT_TRUE(f.GetBool("absent", true));
}

TEST(FlagsTest, TrailingBooleanBeforeFlag) {
  Flags f = MustParse({"--chart", "--csv", "out.csv"});
  EXPECT_TRUE(f.GetBool("chart"));
  EXPECT_EQ(f.GetString("csv"), "out.csv");
}

TEST(FlagsTest, Positional) {
  Flags f = MustParse({"input.txt", "--k=1", "more"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "more");
}

TEST(FlagsTest, Defaults) {
  Flags f = MustParse({});
  EXPECT_EQ(f.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(f.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 2.5), 2.5);
}

TEST(FlagsTest, MalformedRejected) {
  const char* argv1[] = {"prog", "--"};
  EXPECT_FALSE(Flags::Parse(2, argv1).ok());
  const char* argv2[] = {"prog", "--=oops"};
  EXPECT_FALSE(Flags::Parse(2, argv2).ok());
}

TEST(FlagsTest, UnconsumedDetection) {
  Flags f = MustParse({"--known=1", "--typo=2"});
  (void)f.GetInt("known");
  auto unused = f.UnconsumedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagTableTest, EnumValueTypoGetsNearMissSuggestion) {
  engine::FlagTable table = engine::ExperimentFlagTable();
  engine::ExperimentConfig config;
  Flags f = MustParse({"--cc=mvvc"});
  Status s = table.Apply(f, &config);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("did you mean mvcc?"), std::string::npos)
      << s.ToString();
}

TEST(FlagTableTest, EnumValuesApplyAndDefault) {
  engine::FlagTable table = engine::ExperimentFlagTable();
  engine::ExperimentConfig config;
  EXPECT_TRUE(table.Apply(MustParse({}), &config).ok());
  EXPECT_EQ(config.cluster.cc, mvcc::ConcurrencyControl::k2PL);
  EXPECT_TRUE(table.Apply(MustParse({"--cc=mvcc"}), &config).ok());
  EXPECT_EQ(config.cluster.cc, mvcc::ConcurrencyControl::kMvcc);
}

TEST(FlagTableTest, EnumValueWithoutNearMissListsTheAllowedSet) {
  Status s = engine::CheckEnumValue("cc", "optimistic", {"2pl", "mvcc"});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("one of 2pl|mvcc"), std::string::npos)
      << s.ToString();
  // Retrofitted onto the older enum flags too.
  engine::FlagTable table = engine::ExperimentFlagTable();
  engine::ExperimentConfig config;
  Status strategy = table.Apply(MustParse({"--strategy=hybrod"}), &config);
  ASSERT_FALSE(strategy.ok());
  EXPECT_NE(strategy.ToString().find("did you mean hybrid?"),
            std::string::npos)
      << strategy.ToString();
}

TEST(FlagTableTest, HelpIsGroupedBySubsystem) {
  engine::FlagTable table = engine::ExperimentFlagTable();
  const std::string help = table.Help("soap_run", "tagline");
  // Subsystem headings, in the fixed rendering order.
  const std::vector<std::string> headings = {
      "cluster:", "workload:", "deployment:", "planner:",
      "replica:", "lion:",     "obs:",        "check:"};
  size_t pos = 0;
  for (const std::string& heading : headings) {
    size_t at = help.find("\n" + heading + "\n");
    EXPECT_NE(at, std::string::npos) << "missing heading " << heading;
    EXPECT_GT(at, pos) << heading << " out of order";
    pos = at;
  }
  // The lion flags sit under the lion heading.
  size_t lion_at = help.find("\nlion:\n");
  size_t obs_at = help.find("\nobs:\n");
  ASSERT_NE(lion_at, std::string::npos);
  ASSERT_NE(obs_at, std::string::npos);
  for (const char* flag :
       {"--lion", "--replica_budget", "--shift_threshold", "--evict"}) {
    size_t at = help.find(flag);
    EXPECT_GT(at, lion_at) << flag;
    EXPECT_LT(at, obs_at) << flag;
  }
}

TEST(FlagTableTest, LionFlagsApply) {
  engine::FlagTable table = engine::ExperimentFlagTable();
  engine::ExperimentConfig config;
  ASSERT_TRUE(table
                  .Apply(MustParse({"--lion", "--replica_budget=7",
                                    "--shift_threshold=0.4", "--evict=heat"}),
                         &config)
                  .ok());
  EXPECT_TRUE(config.lion.enabled);
  // --lion implies the subsystems it builds on.
  EXPECT_TRUE(config.replicas.enabled);
  EXPECT_TRUE(config.planner_options.enabled);
  EXPECT_EQ(config.lion.replica_budget, 7);
  EXPECT_DOUBLE_EQ(config.lion.shift_threshold, 0.4);
  EXPECT_EQ(config.lion.evict, "heat");
  EXPECT_TRUE(config.Validate().ok());
}

TEST(FlagTableTest, PairingKnobsWireIntoTheHubPhase) {
  engine::FlagTable table = engine::ExperimentFlagTable();
  engine::ExperimentConfig config;
  ASSERT_TRUE(table
                  .Apply(MustParse({"--pair_hub=5", "--pair_fraction=0.35",
                                    "--pair_affinity", "--pair_write=0.125"}),
                         &config)
                  .ok());
  ASSERT_EQ(config.workload_options.spec.phases.size(), 1u);
  const workload::DriftPhase& phase = config.workload_options.spec.phases[0];
  EXPECT_EQ(phase.pair_hub, 5u);
  EXPECT_DOUBLE_EQ(phase.pair_fraction, 0.35);
  EXPECT_TRUE(phase.pair_affinity);
  EXPECT_DOUBLE_EQ(phase.pair_write, 0.125);
  // Without --pair_hub the knobs are inert: no phase is created.
  engine::ExperimentConfig plain;
  ASSERT_TRUE(
      table.Apply(MustParse({"--pair_affinity", "--pair_write=0.5"}), &plain)
          .ok());
  EXPECT_TRUE(plain.workload_options.spec.phases.empty());
}

TEST(FlagTableTest, EvictTypoGetsNearMissSuggestion) {
  engine::FlagTable table = engine::ExperimentFlagTable();
  engine::ExperimentConfig config;
  Status s = table.Apply(MustParse({"--lion", "--evict=heta"}), &config);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("did you mean heat?"), std::string::npos)
      << s.ToString();
}

TEST(SeriesChartTest, ChartContainsLegendAndMarks) {
  SeriesBundle b("demo");
  Series& a = b.Add("alpha");
  for (double v : {1.0, 5.0, 9.0}) a.Append(v);
  Series& c = b.Add("beta");
  for (double v : {9.0, 5.0, 1.0}) c.Append(v);
  const std::string chart = b.ToAsciiChart(6);
  EXPECT_NE(chart.find("legend: A=alpha B=beta"), std::string::npos);
  EXPECT_NE(chart.find('A'), std::string::npos);
  EXPECT_NE(chart.find('B'), std::string::npos);
  EXPECT_NE(chart.find("demo"), std::string::npos);
}

TEST(SeriesChartTest, EmptyBundleSafe) {
  SeriesBundle b("empty");
  EXPECT_NE(b.ToAsciiChart().find("empty"), std::string::npos);
}

TEST(SeriesChartTest, FlatSeriesSafe) {
  SeriesBundle b("flat");
  Series& s = b.Add("x");
  for (int i = 0; i < 5; ++i) s.Append(3.0);
  const std::string chart = b.ToAsciiChart(4);
  EXPECT_NE(chart.find('A'), std::string::npos);
}

TEST(SeriesChartTest, LogScaleLabelsPositive) {
  SeriesBundle b("lat");
  Series& s = b.Add("ms");
  for (double v : {10.0, 100.0, 100000.0}) s.Append(v);
  const std::string chart = b.ToAsciiChart(8, /*log_scale=*/true);
  EXPECT_NE(chart.find("log scale"), std::string::npos);
  EXPECT_EQ(chart.find("-nan"), std::string::npos);
}

}  // namespace
}  // namespace soap
