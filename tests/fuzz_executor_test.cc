// Randomized executor property test: a seeded storm of writers, readers,
// migrations and replica operations over a small cluster. Whatever the
// interleaving, at quiesce (a) every transaction reached a terminal state,
// (b) storage and routing agree exactly (CheckConsistency), (c) no lock is
// left behind, and (d) each key's final value is the write_value of some
// committed writer (no lost or phantom updates).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/transaction_manager.h"
#include "src/common/random.h"

namespace soap {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::TransactionManager;
using txn::OpKind;
using txn::Operation;
using txn::Transaction;

class ExecutorFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorFuzz, InvariantsUnderRandomStorm) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  constexpr uint32_t kNodes = 3;
  constexpr uint64_t kKeys = 40;
  sim::Simulator sim;
  ClusterConfig config;
  config.num_nodes = kNodes;
  config.workers_per_node = 2;
  config.num_keys = kKeys;
  config.network.jitter = Micros(300);
  // Exercise both isolation levels across seeds.
  config.isolation = seed % 2 == 0 ? cluster::IsolationLevel::kReadCommitted
                                   : cluster::IsolationLevel::kSerializable;
  Cluster cluster(&sim, config);
  TransactionManager tm(&cluster);
  for (storage::TupleKey k = 0; k < kKeys; ++k) {
    storage::Tuple t;
    t.key = k;
    t.content = -1;
    ASSERT_TRUE(cluster.LoadTuple(t, k % kNodes).ok());
  }

  // Committed writers per key, collected at completion.
  std::map<storage::TupleKey, std::set<int64_t>> committed_writes;
  std::map<txn::TxnId, std::vector<std::pair<storage::TupleKey, int64_t>>>
      write_sets;
  uint64_t completed = 0;
  tm.set_completion_callback([&](const Transaction& t) {
    ++completed;
    if (!t.committed()) return;
    for (const auto& [key, value] : write_sets[t.id]) {
      committed_writes[key].insert(value);
    }
  });

  uint64_t submitted = 0;
  int64_t next_value = 1;
  uint64_t next_rep_id = 1;
  for (int step = 0; step < 400; ++step) {
    const SimTime at = static_cast<SimTime>(rng.NextUint64(5'000)) * 1000;
    const uint32_t kind = static_cast<uint32_t>(rng.NextUint64(10));
    auto t = std::make_unique<Transaction>();
    if (kind < 5) {
      // Mixed read/write transaction over 1-4 distinct keys.
      const auto num_ops = 1 + rng.NextUint64(4);
      std::set<storage::TupleKey> keys;
      while (keys.size() < num_ops) keys.insert(rng.NextUint64(kKeys));
      for (storage::TupleKey key : keys) {
        Operation op;
        if (rng.NextBernoulli(0.5)) {
          op.kind = OpKind::kWrite;
          op.key = key;
          op.write_value = next_value++;
        } else {
          op.kind = OpKind::kRead;
          op.key = key;
        }
        t->ops.push_back(op);
      }
    } else if (kind < 8) {
      // Migration of a random key to a random other partition; source is
      // resolved optimistically (a stale source makes the op skip).
      const storage::TupleKey key = rng.NextUint64(kKeys);
      const uint32_t to = static_cast<uint32_t>(rng.NextUint64(kNodes));
      t->is_repartition = true;
      Operation ins;
      ins.kind = OpKind::kMigrateInsert;
      ins.key = key;
      ins.source_partition = static_cast<uint32_t>(key % kNodes);
      ins.target_partition = to;
      ins.repartition_op_id = next_rep_id;
      Operation del = ins;
      del.kind = OpKind::kMigrateDelete;
      t->ops = {ins, del};
      ++next_rep_id;
    } else if (kind < 9) {
      const storage::TupleKey key = rng.NextUint64(kKeys);
      t->is_repartition = true;
      Operation create;
      create.kind = OpKind::kReplicaCreate;
      create.key = key;
      create.target_partition = static_cast<uint32_t>(rng.NextUint64(kNodes));
      create.repartition_op_id = next_rep_id++;
      t->ops = {create};
    } else {
      const storage::TupleKey key = rng.NextUint64(kKeys);
      t->is_repartition = true;
      Operation del;
      del.kind = OpKind::kReplicaDelete;
      del.key = key;
      del.source_partition = static_cast<uint32_t>(rng.NextUint64(kNodes));
      del.repartition_op_id = next_rep_id++;
      t->ops = {del};
    }
    ++submitted;
    Transaction* raw = t.get();
    sim.At(at, [&tm, &write_sets, raw, t = std::shared_ptr<Transaction>(
                                            std::move(t))]() mutable {
      // Capture the write set under the id the TM will assign.
      auto owned = std::make_unique<Transaction>(*t);
      const txn::TxnId id = tm.Submit(std::move(owned));
      std::vector<std::pair<storage::TupleKey, int64_t>> writes;
      for (const Operation& op : raw->ops) {
        if (op.kind == OpKind::kWrite) {
          writes.emplace_back(op.key, op.write_value);
        }
      }
      write_sets[id] = std::move(writes);
    });
  }
  sim.Run();

  // (a) Every submission reached a terminal state.
  EXPECT_EQ(completed, submitted);
  EXPECT_EQ(tm.inflight(), 0u);
  EXPECT_TRUE(tm.queue().Empty());
  // (b) Storage and routing agree.
  EXPECT_TRUE(cluster.CheckConsistency().ok()) << "seed " << seed;
  // (c) No lock residue.
  EXPECT_EQ(cluster.lock_manager().LockedKeyCount(), 0u);
  // (d) Every key's final value is -1 (never written) or some committed
  // writer's value; replicas match the primary.
  for (storage::TupleKey key = 0; key < kKeys; ++key) {
    Result<router::Placement> placement =
        cluster.routing_table().GetPlacement(key);
    ASSERT_TRUE(placement.ok()) << key;
    Result<storage::Tuple> tuple =
        cluster.storage(placement->primary).Read(key);
    ASSERT_TRUE(tuple.ok()) << key;
    if (tuple->content != -1) {
      EXPECT_TRUE(committed_writes[key].count(tuple->content))
          << "key " << key << " holds value " << tuple->content
          << " from no committed writer (seed " << seed << ")";
    }
    for (uint32_t rep : placement->replicas) {
      Result<storage::Tuple> copy = cluster.storage(rep).Read(key);
      ASSERT_TRUE(copy.ok());
      EXPECT_EQ(copy->content, tuple->content) << "replica divergence";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzz,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace soap
