#include "src/workload/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/workload/template_catalog.h"

namespace soap::workload {
namespace {

WorkloadSpec SmallSpec() {
  WorkloadSpec s;
  s.num_templates = 40;
  s.num_keys = 400;
  s.alpha = 1.0;
  s.seed = 2;
  return s;
}

struct TxnFingerprint {
  uint32_t template_id;
  uint32_t partner_template;
  std::vector<storage::TupleKey> keys;

  bool operator==(const TxnFingerprint& o) const {
    return template_id == o.template_id &&
           partner_template == o.partner_template && keys == o.keys;
  }
};

std::vector<TxnFingerprint> Fingerprints(
    const std::vector<std::unique_ptr<txn::Transaction>>& batch) {
  std::vector<TxnFingerprint> out;
  out.reserve(batch.size());
  for (const auto& t : batch) {
    TxnFingerprint fp;
    fp.template_id = t->template_id;
    fp.partner_template = t->partner_template;
    for (const auto& op : t->ops) fp.keys.push_back(op.key);
    out.push_back(std::move(fp));
  }
  return out;
}

TEST(GeneratorTest, SameSeedSameArrivalStream) {
  TemplateCatalog catalog(SmallSpec(), 4);
  WorkloadGenerator a(&catalog, 99);
  WorkloadGenerator b(&catalog, 99);
  for (uint32_t interval = 0; interval < 5; ++interval) {
    auto batch_a = a.GenerateInterval(30.0);
    auto batch_b = b.GenerateInterval(30.0);
    ASSERT_EQ(batch_a.size(), batch_b.size()) << "interval " << interval;
    EXPECT_EQ(Fingerprints(batch_a), Fingerprints(batch_b));
  }
  EXPECT_EQ(a.generated(), b.generated());
}

TEST(GeneratorTest, DifferentSeedDifferentStream) {
  TemplateCatalog catalog(SmallSpec(), 4);
  WorkloadGenerator a(&catalog, 1);
  WorkloadGenerator b(&catalog, 2);
  auto batch_a = a.GenerateInterval(50.0);
  auto batch_b = b.GenerateInterval(50.0);
  EXPECT_FALSE(batch_a.size() == batch_b.size() &&
               Fingerprints(batch_a) == Fingerprints(batch_b));
}

// The phase-aware entry points must take the exact same draw path as the
// legacy ones while no drift phase governs the interval — stationary runs
// stay bit-identical whether or not the caller is drift-aware.
TEST(GeneratorTest, PhaseAwarePathMatchesLegacyWithoutPhases) {
  TemplateCatalog catalog(SmallSpec(), 4);
  WorkloadGenerator legacy(&catalog, 7);
  WorkloadGenerator phased(&catalog, 7);
  for (uint32_t interval = 0; interval < 4; ++interval) {
    auto batch_a = legacy.GenerateInterval(25.0);
    auto batch_b = phased.GenerateInterval(25.0, interval);
    ASSERT_EQ(batch_a.size(), batch_b.size());
    EXPECT_EQ(Fingerprints(batch_a), Fingerprints(batch_b));
  }
}

// Same equivalence before the first phase starts: a drifting spec behaves
// stationarily until its first start_interval.
TEST(GeneratorTest, DriftSpecIsStationaryBeforeFirstPhase) {
  WorkloadSpec spec = WorkloadSpec::HotspotDrift(SmallSpec(),
                                                 /*first_interval=*/10,
                                                 /*num_phases=*/2,
                                                 /*phase_len=*/5);
  TemplateCatalog plain_catalog(SmallSpec(), 4);
  TemplateCatalog drift_catalog(spec, 4);
  WorkloadGenerator plain(&plain_catalog, 7);
  WorkloadGenerator drifting(&drift_catalog, 7);
  auto batch_a = plain.GenerateInterval(25.0, 0);
  auto batch_b = drifting.GenerateInterval(25.0, 9);  // last pre-drift
  ASSERT_EQ(batch_a.size(), batch_b.size());
  EXPECT_EQ(Fingerprints(batch_a), Fingerprints(batch_b));
}

TEST(GeneratorTest, HotspotPhaseRotatesThePopularTemplates) {
  WorkloadSpec spec = WorkloadSpec::HotspotDrift(SmallSpec(),
                                                 /*first_interval=*/0,
                                                 /*num_phases=*/2,
                                                 /*phase_len=*/5,
                                                 /*pair_fraction=*/0.0);
  ASSERT_EQ(spec.phases.size(), 2u);
  const uint32_t rotation = spec.phases[1].rotation;
  ASSERT_NE(rotation, 0u);
  TemplateCatalog catalog(spec, 4);
  // Popularity histograms per phase; with Zipf s=1.16 the hottest
  // template collects a clearly recognisable share.
  std::vector<uint32_t> phase0(spec.num_templates, 0);
  std::vector<uint32_t> phase1(spec.num_templates, 0);
  WorkloadGenerator gen(&catalog, 11);
  for (int i = 0; i < 4000; ++i) {
    phase0[gen.GenerateOne(0)->template_id]++;
    phase1[gen.GenerateOne(5)->template_id]++;
  }
  const auto argmax = [](const std::vector<uint32_t>& h) {
    uint32_t best = 0;
    for (uint32_t t = 1; t < h.size(); ++t) {
      if (h[t] > h[best]) best = t;
    }
    return best;
  };
  EXPECT_EQ(argmax(phase0), 0u);
  EXPECT_EQ(argmax(phase1), rotation % spec.num_templates);
}

TEST(GeneratorTest, PairedTransactionsSpanTwoTemplates) {
  WorkloadSpec spec = SmallSpec();
  DriftPhase ph;
  ph.start_interval = 0;
  ph.pair_fraction = 1.0;  // every txn paired
  ph.pair_stride = 3;
  spec.phases.push_back(ph);
  TemplateCatalog catalog(spec, 4);
  WorkloadGenerator gen(&catalog, 5);
  const uint32_t q = spec.queries_per_txn;
  for (int i = 0; i < 50; ++i) {
    auto t = gen.GenerateOne(0);
    ASSERT_NE(t->partner_template, txn::Transaction::kNoPartnerTemplate);
    EXPECT_EQ(t->partner_template,
              (t->template_id + ph.pair_stride) % spec.num_templates);
    ASSERT_EQ(t->ops.size(), q);
    const TxnTemplate& base = catalog.at(t->template_id);
    const TxnTemplate& partner = catalog.at(t->partner_template);
    // The last half of the read positions borrow the partner's keys;
    // writes (the tail positions) always stay on the base template's own
    // keys.
    uint32_t reads = 0;
    while (reads < q && !base.is_write[reads]) ++reads;
    const uint32_t borrow = std::min(q / 2, reads);
    const uint32_t borrow_begin = reads - borrow;
    bool saw_partner_key = false;
    for (uint32_t i2 = 0; i2 < q; ++i2) {
      const bool borrowed = i2 >= borrow_begin && i2 < reads;
      if (borrowed) {
        EXPECT_EQ(t->ops[i2].kind, txn::OpKind::kRead) << "query " << i2;
        saw_partner_key = true;
      }
      const auto& owner_keys = borrowed ? partner.keys : base.keys;
      EXPECT_TRUE(std::find(owner_keys.begin(), owner_keys.end(),
                            t->ops[i2].key) != owner_keys.end())
          << "query " << i2;
    }
    EXPECT_TRUE(saw_partner_key);
  }
}

// Affinity hubs key the partner off the *issuing partition*: every
// template homed on partition P borrows from hub template (P+1) % hub,
// so each hub has exactly one borrower partition and the mapping holds
// no matter which template popularity rotation made popular.
TEST(GeneratorTest, AffinityPairingKeysThePartnerOffTheHomePartition) {
  WorkloadSpec spec = SmallSpec();
  DriftPhase ph;
  ph.start_interval = 0;
  ph.pair_fraction = 1.0;
  ph.pair_hub = 4;
  ph.pair_affinity = true;
  spec.phases.push_back(ph);
  TemplateCatalog catalog(spec, 4);
  WorkloadGenerator gen(&catalog, 5);
  for (int i = 0; i < 50; ++i) {
    auto t = gen.GenerateOne(0);
    const uint32_t home = catalog.at(t->template_id).home_partition;
    const uint32_t want = (home + 1) % ph.pair_hub;
    if (want == t->template_id) {
      // Self-pairing degenerates to a plain instantiation.
      EXPECT_EQ(t->partner_template, txn::Transaction::kNoPartnerTemplate);
    } else {
      EXPECT_EQ(t->partner_template, want) << "template " << t->template_id;
    }
  }
}

// pair_write=1.0 turns every borrowed position into a write of the
// partner's key; the base template's own read/write pattern is intact.
TEST(GeneratorTest, PairWriteFlipsBorrowedPositionsToWrites) {
  WorkloadSpec spec = SmallSpec();
  DriftPhase ph;
  ph.start_interval = 0;
  ph.pair_fraction = 1.0;
  ph.pair_stride = 3;
  ph.pair_write = 1.0;
  spec.phases.push_back(ph);
  TemplateCatalog catalog(spec, 4);
  WorkloadGenerator gen(&catalog, 5);
  const uint32_t q = spec.queries_per_txn;
  for (int i = 0; i < 50; ++i) {
    auto t = gen.GenerateOne(0);
    ASSERT_NE(t->partner_template, txn::Transaction::kNoPartnerTemplate);
    const TxnTemplate& base = catalog.at(t->template_id);
    const TxnTemplate& partner = catalog.at(t->partner_template);
    uint32_t reads = 0;
    while (reads < q && !base.is_write[reads]) ++reads;
    const uint32_t borrow = std::min(q / 2, reads);
    const uint32_t borrow_begin = reads - borrow;
    for (uint32_t i2 = 0; i2 < q; ++i2) {
      const bool borrowed = i2 >= borrow_begin && i2 < reads;
      if (borrowed) {
        EXPECT_EQ(t->ops[i2].kind, txn::OpKind::kWrite) << "query " << i2;
        EXPECT_EQ(t->ops[i2].key,
                  partner.keys[(i2 - borrow_begin) % partner.keys.size()]);
      } else {
        EXPECT_EQ(t->ops[i2].kind, base.is_write[i2] ? txn::OpKind::kWrite
                                                     : txn::OpKind::kRead);
        EXPECT_EQ(t->ops[i2].key, base.keys[i2]);
      }
    }
  }
}

TEST(GeneratorTest, UnpairedTransactionsHaveNoPartner) {
  TemplateCatalog catalog(SmallSpec(), 4);
  WorkloadGenerator gen(&catalog, 5);
  auto t = gen.GenerateOne();
  EXPECT_EQ(t->partner_template, txn::Transaction::kNoPartnerTemplate);
}

}  // namespace
}  // namespace soap::workload
