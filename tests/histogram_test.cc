#include "src/common/histogram.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace soap {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_NEAR(h.Percentile(50), 42.0, 1e-9);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  for (uint64_t v : {10u, 20u, 30u, 40u}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 25.0);
}

TEST(HistogramTest, MinMaxTracked) {
  Histogram h;
  h.Record(5);
  h.Record(500000);
  h.Record(17);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 500000u);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) h.Record(rng.NextUint64(100000));
  double prev = 0.0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    double q = h.Percentile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(HistogramTest, UniformMedianApproximatelyCenter) {
  Histogram h;
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) h.Record(rng.NextUint64(1 << 16));
  // Exponential buckets give coarse quantiles: within a factor ~2.
  const double med = h.Percentile(50);
  EXPECT_GT(med, (1 << 16) * 0.25);
  EXPECT_LT(med, (1 << 16) * 0.95);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(1);
  a.Record(2);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_DOUBLE_EQ(a.Mean(), (1 + 2 + 1000) / 3.0);
}

TEST(HistogramTest, MergeWithEmpty) {
  Histogram a, b;
  a.Record(9);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 9u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.min(), 9u);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Record(7);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, ZeroAndOneShareFirstBucket) {
  Histogram h;
  h.Record(0);
  h.Record(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1u);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Record(UINT64_MAX);
  h.Record(UINT64_MAX / 2);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_EQ(h.count(), 2u);
}

TEST(HistogramTest, ToStringContainsCount) {
  Histogram h;
  h.Record(3);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

}  // namespace
}  // namespace soap
