#include "src/check/history_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/json.h"

namespace soap::check {
namespace {

txn::Transaction Writer(uint64_t id, storage::TupleKey key, int64_t value) {
  txn::Transaction t;
  t.id = id;
  txn::Operation op;
  op.kind = txn::OpKind::kWrite;
  op.key = key;
  op.write_value = value;
  t.ops.push_back(op);
  return t;
}

storage::Tuple Row(storage::TupleKey key, int64_t content) {
  storage::Tuple t;
  t.key = key;
  t.content = content;
  return t;
}

TEST(HistoryRecorderTest, CommitAppendsOneVersionPerKey) {
  HistoryRecorder rec;
  rec.OnCommit(Writer(1, 42, 100), 10);
  rec.OnCommit(Writer(2, 42, 200), 20);
  const auto& chain = rec.chains().at(42);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].writer, 1u);
  EXPECT_EQ(chain[1].writer, 2u);
  EXPECT_EQ(chain[1].commit_time, 20u);
  int64_t tail = 0;
  ASSERT_TRUE(rec.TailValue(42, &tail));
  EXPECT_EQ(tail, 200);
}

TEST(HistoryRecorderTest, DoubleWriteCommitsOnlyTheLastValue) {
  HistoryRecorder rec;
  txn::Transaction t = Writer(1, 7, 10);
  txn::Operation again;
  again.kind = txn::OpKind::kWrite;
  again.key = 7;
  again.write_value = 99;
  t.ops.push_back(again);
  rec.OnCommit(t, 5);
  ASSERT_EQ(rec.chains().at(7).size(), 1u);
  EXPECT_EQ(rec.chains().at(7)[0].value, 99);
}

TEST(HistoryRecorderTest, UpdateAppliesAttributeTheWritingTxn) {
  HistoryRecorder rec;
  rec.OnApplyUpdate(/*partition=*/3, /*txn_id=*/9, Row(5, 1));
  EXPECT_EQ(rec.LastWriter(3, 5), 9u);
  ASSERT_EQ(rec.write_applies().size(), 1u);
  EXPECT_EQ(rec.write_applies()[0].partition, 3u);
  EXPECT_EQ(rec.write_applies()[0].writer, 9u);
}

TEST(HistoryRecorderTest, CopyAppliesAttributeTheChainTail) {
  HistoryRecorder rec;
  rec.OnCommit(Writer(4, 5, 1), 10);
  // A migration/replica insert and a txn-0 catch-up refresh both carry
  // whatever version the chain tail holds, not the applying txn's id.
  rec.OnApplyInsert(/*partition=*/1, /*txn_id=*/77, Row(5, 1));
  EXPECT_EQ(rec.LastWriter(1, 5), 4u);
  rec.OnApplyUpdate(/*partition=*/2, /*txn_id=*/0, Row(5, 1));
  EXPECT_EQ(rec.LastWriter(2, 5), 4u);
  // Neither is an ordering-checked write apply.
  EXPECT_TRUE(rec.write_applies().empty());
}

TEST(HistoryRecorderTest, EraseForgetsThePartitionCopy) {
  HistoryRecorder rec;
  rec.OnApplyUpdate(0, 9, Row(5, 1));
  rec.OnApplyErase(0, 9, 5);
  EXPECT_EQ(rec.LastWriter(0, 5), 0u);
}

TEST(HistoryRecorderTest, ReadsSnapshotTheServingPartition) {
  HistoryRecorder rec;
  rec.OnApplyUpdate(0, 9, Row(5, 1));
  rec.OnRead(/*txn_id=*/11, /*key=*/5, /*partition=*/0, /*at=*/50);
  rec.OnRead(/*txn_id=*/12, /*key=*/5, /*partition=*/1, /*at=*/60);
  ASSERT_EQ(rec.reads().size(), 2u);
  EXPECT_EQ(rec.reads()[0].observed_writer, 9u);
  // Partition 1 never stored the key: initial version.
  EXPECT_EQ(rec.reads()[1].observed_writer, 0u);
}

TEST(HistoryRecorderTest, HistoryFileIsParseableJsonl) {
  HistoryRecorder rec;
  rec.OnCommit(Writer(1, 42, 100), 10);
  rec.OnApplyUpdate(0, 1, Row(42, 100));
  rec.OnRead(2, 42, 0, 50);
  rec.OnCommit(Writer(2, 43, 7), 60);
  const std::string path = ::testing::TempDir() + "history_test.jsonl";
  ASSERT_TRUE(rec.WriteHistoryFile(path).ok());

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  Result<std::vector<json::Value>> lines = json::ParseLines(buf.str());
  ASSERT_TRUE(lines.ok()) << lines.status().ToString();
  size_t commits = 0, chains = 0, reads = 0;
  for (const json::Value& v : *lines) {
    const std::string kind = v.GetString("kind");
    if (kind == "commit") commits++;
    if (kind == "chain") chains++;
    if (kind == "read") reads++;
  }
  EXPECT_EQ(commits, 2u);
  EXPECT_EQ(chains, 2u);
  EXPECT_EQ(reads, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace soap::check
