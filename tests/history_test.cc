#include "src/workload/history.h"

#include <gtest/gtest.h>

namespace soap::workload {
namespace {

TEST(WorkloadHistoryTest, EmptyHistoryReportsZeroRates) {
  WorkloadHistory history(4, 3);
  EXPECT_EQ(history.window_size(), 0u);
  EXPECT_EQ(history.total_recorded(), 0u);
  EXPECT_DOUBLE_EQ(history.FrequencyOf(0), 0.0);
  EXPECT_DOUBLE_EQ(history.TotalRate(), 0.0);
}

TEST(WorkloadHistoryTest, OpenIntervalNotVisibleUntilClosed) {
  WorkloadHistory history(2, 4);
  history.Record(0);
  history.Record(0);
  // Recorded but the interval is still open: estimates cover closed
  // intervals only.
  EXPECT_EQ(history.total_recorded(), 2u);
  EXPECT_DOUBLE_EQ(history.FrequencyOf(0), 0.0);
  history.CloseInterval(Seconds(10));
  EXPECT_DOUBLE_EQ(history.FrequencyOf(0), 0.2);
  EXPECT_DOUBLE_EQ(history.FrequencyOf(1), 0.0);
}

TEST(WorkloadHistoryTest, FrequencyAggregatesPartialWindow) {
  WorkloadHistory history(2, 10);  // window larger than what we fill
  history.Record(0);
  history.CloseInterval(Seconds(20));
  history.Record(0);
  history.Record(0);
  history.Record(1);
  history.CloseInterval(Seconds(20));
  EXPECT_EQ(history.window_size(), 2u);
  // 3 observations of template 0 over 40 seconds.
  EXPECT_DOUBLE_EQ(history.FrequencyOf(0), 3.0 / 40.0);
  EXPECT_DOUBLE_EQ(history.FrequencyOf(1), 1.0 / 40.0);
  EXPECT_DOUBLE_EQ(history.TotalRate(), 4.0 / 40.0);
}

TEST(WorkloadHistoryTest, SlidingWindowEvictsOldestInterval) {
  WorkloadHistory history(1, 2);
  history.Record(0);  // interval A: 1 observation
  history.CloseInterval(Seconds(10));
  history.Record(0);  // interval B: 2 observations
  history.Record(0);
  history.CloseInterval(Seconds(10));
  EXPECT_DOUBLE_EQ(history.FrequencyOf(0), 3.0 / 20.0);
  // Interval C evicts A: only B + C remain.
  history.Record(0);
  history.Record(0);
  history.Record(0);
  history.CloseInterval(Seconds(10));
  EXPECT_EQ(history.window_size(), 2u);
  EXPECT_DOUBLE_EQ(history.FrequencyOf(0), 5.0 / 20.0);
  // total_recorded keeps the lifetime tally even after eviction.
  EXPECT_EQ(history.total_recorded(), 6u);
}

TEST(WorkloadHistoryTest, EvictionHandlesVariableIntervalLengths) {
  WorkloadHistory history(1, 2);
  history.Record(0);
  history.CloseInterval(Seconds(30));  // long interval, later evicted
  history.Record(0);
  history.CloseInterval(Seconds(10));
  history.Record(0);
  history.CloseInterval(Seconds(10));
  // Window now covers the two 10-second intervals only.
  EXPECT_DOUBLE_EQ(history.FrequencyOf(0), 2.0 / 20.0);
  EXPECT_DOUBLE_EQ(history.TotalRate(), 2.0 / 20.0);
}

// The incrementally maintained aggregate must equal a from-scratch
// recount of the retained window at every step.
TEST(WorkloadHistoryTest, IncrementalAggregateMatchesRecount) {
  constexpr uint32_t kTemplates = 5;
  constexpr uint32_t kWindow = 3;
  WorkloadHistory history(kTemplates, kWindow);
  // Deterministic but irregular schedule of records.
  std::vector<std::vector<uint32_t>> per_interval_counts;
  for (uint32_t interval = 0; interval < 10; ++interval) {
    std::vector<uint32_t> counts(kTemplates, 0);
    for (uint32_t j = 0; j < (interval * 7) % 11; ++j) {
      const uint32_t t = (interval + j * j) % kTemplates;
      history.Record(t);
      counts[t]++;
    }
    per_interval_counts.push_back(counts);
    history.CloseInterval(Seconds(20));

    const size_t first_retained =
        per_interval_counts.size() > kWindow
            ? per_interval_counts.size() - kWindow
            : 0;
    const double window_seconds =
        20.0 *
        static_cast<double>(per_interval_counts.size() - first_retained);
    for (uint32_t t = 0; t < kTemplates; ++t) {
      uint64_t expect = 0;
      for (size_t i = first_retained; i < per_interval_counts.size(); ++i) {
        expect += per_interval_counts[i][t];
      }
      EXPECT_DOUBLE_EQ(history.FrequencyOf(t),
                       static_cast<double>(expect) / window_seconds)
          << "interval " << interval << " template " << t;
    }
  }
}

}  // namespace
}  // namespace soap::workload
