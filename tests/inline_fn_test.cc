#include "src/sim/inline_fn.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>
#include <vector>

namespace soap::sim {
namespace {

TEST(InlineFnTest, DefaultIsEmpty) {
  InlineFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFnTest, InvokesSmallLambda) {
  int calls = 0;
  InlineFn fn = [&calls] { ++calls; };
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFnTest, HoldsMoveOnlyCapture) {
  auto payload = std::make_unique<int>(41);
  int got = 0;
  InlineFn fn = [&got, payload = std::move(payload)] { got = *payload + 1; };
  fn();
  EXPECT_EQ(got, 42);
}

TEST(InlineFnTest, MoveTransfersTargetAndEmptiesSource) {
  int calls = 0;
  InlineFn a = [&calls] { ++calls; };
  InlineFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(InlineFnTest, MoveAssignReleasesPreviousTarget) {
  auto counter = std::make_shared<int>(0);
  InlineFn a = [counter] { ++*counter; };
  EXPECT_EQ(counter.use_count(), 2);
  a = InlineFn([] {});
  EXPECT_EQ(counter.use_count(), 1);  // old target destroyed
}

TEST(InlineFnTest, LargeCaptureFallsBackToHeapAndStillWorks) {
  // Way past kInlineCapacity: forces the heap cell path.
  std::array<uint64_t, 32> big;
  for (size_t i = 0; i < big.size(); ++i) big[i] = i;
  uint64_t sum = 0;
  InlineFn fn = [big, &sum] {
    for (uint64_t v : big) sum += v;
  };
  InlineFn moved = std::move(fn);
  moved();
  EXPECT_EQ(sum, 31u * 32u / 2u);
}

TEST(InlineFnTest, DestructorReleasesInlineCapture) {
  auto counter = std::make_shared<int>(0);
  {
    InlineFn fn = [counter] { ++*counter; };
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFnTest, ResetEmptiesAndReleases) {
  auto counter = std::make_shared<int>(0);
  InlineFn fn = [counter] { ++*counter; };
  fn.Reset();
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFnTest, NullptrAssignmentClears) {
  InlineFn fn = [] {};
  fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFnTest, VectorOfInlineFnRelocatesSafely) {
  // Growing a vector relocates the functions; captured state must follow.
  std::vector<InlineFn> fns;
  int total = 0;
  for (int i = 0; i < 100; ++i) {
    fns.emplace_back([&total, i] { total += i; });
  }
  for (InlineFn& fn : fns) fn();
  EXPECT_EQ(total, 99 * 100 / 2);
}

TEST(InlineFnTest, HotClosureShapesStayInline) {
  // The shapes the simulator schedules all day must fit the inline buffer;
  // if one outgrows it this static check fails the build of the test, not
  // a profile three layers later.
  struct GrantShape {
    void* a;
    void* b;
    int64_t c;
    std::shared_ptr<int> d;
  };
  static_assert(sizeof(GrantShape) <= InlineFn::kInlineCapacity);
  auto lambda = [](GrantShape* s) {
    return [s]() { ++s->c; };
  };
  static_assert(sizeof(decltype(lambda(nullptr))) <=
                InlineFn::kInlineCapacity);
}

}  // namespace
}  // namespace soap::sim
