// Cross-module integration and property tests: migrations racing normal
// writes, WAL recovery of a post-repartitioning node, the repartitioner's
// end-to-end path, and an experiment matrix sweep asserting the invariants
// every (strategy, load, distribution) combination must uphold.

#include <gtest/gtest.h>

#include "src/engine/experiment.h"

namespace soap {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::TransactionManager;
using txn::OpKind;
using txn::Operation;
using txn::Transaction;

// ---------------------------------------------------------------------
// Migration / write interleavings on a raw cluster.
// ---------------------------------------------------------------------

class RaceTest : public ::testing::Test {
 protected:
  RaceTest() : cluster_(&sim_, Config()), tm_(&cluster_) {
    for (storage::TupleKey k = 0; k < 20; ++k) {
      storage::Tuple t;
      t.key = k;
      t.content = 1000 + static_cast<int64_t>(k);
      EXPECT_TRUE(cluster_.LoadTuple(t, k % 2).ok());
    }
    tm_.set_completion_callback([this](const Transaction& t) {
      if (t.committed()) ++commits_;
      else ++aborts_;
    });
  }

  static ClusterConfig Config() {
    ClusterConfig c;
    c.num_nodes = 2;
    c.workers_per_node = 2;
    c.num_keys = 20;
    c.network.jitter = 0;
    return c;
  }

  std::unique_ptr<Transaction> Migration(storage::TupleKey key,
                                         uint32_t from, uint32_t to,
                                         uint64_t id) {
    auto t = std::make_unique<Transaction>();
    t->is_repartition = true;
    Operation ins;
    ins.kind = OpKind::kMigrateInsert;
    ins.key = key;
    ins.source_partition = from;
    ins.target_partition = to;
    ins.repartition_op_id = id;
    Operation del = ins;
    del.kind = OpKind::kMigrateDelete;
    t->ops = {ins, del};
    return t;
  }

  std::unique_ptr<Transaction> Writer(storage::TupleKey key, int64_t value) {
    auto t = std::make_unique<Transaction>();
    Operation w;
    w.kind = OpKind::kWrite;
    w.key = key;
    w.write_value = value;
    t->ops = {w};
    return t;
  }

  sim::Simulator sim_;
  Cluster cluster_;
  TransactionManager tm_;
  int commits_ = 0;
  int aborts_ = 0;
};

TEST_F(RaceTest, WriteBeforeMigrationIsCarriedAlong) {
  tm_.Submit(Writer(0, 7));
  sim_.After(Millis(50), [&] { tm_.Submit(Migration(0, 0, 1, 1)); });
  sim_.Run();
  EXPECT_EQ(commits_, 2);
  EXPECT_EQ(cluster_.storage(1).Read(0)->content, 7);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(RaceTest, WriteRacingMigrationLandsAtNewHome) {
  // Submitted in the same instant: whatever the interleaving, the write
  // must not be lost and consistency must hold.
  tm_.Submit(Migration(0, 0, 1, 1));
  tm_.Submit(Writer(0, 7));
  sim_.Run();
  EXPECT_EQ(commits_, 2);
  EXPECT_EQ(*cluster_.routing_table().GetPrimary(0), 1u);
  EXPECT_EQ(cluster_.storage(1).Read(0)->content, 7);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(RaceTest, ReadsNeverBlockDuringMigration) {
  tm_.Submit(Migration(0, 0, 1, 1));
  auto reader = std::make_unique<Transaction>();
  Operation r;
  r.kind = OpKind::kRead;
  r.key = 0;
  reader->ops = {r};
  SimTime reader_done = 0;
  tm_.set_completion_callback([&](const Transaction& t) {
    if (!t.is_repartition) reader_done = t.finish_time;
    if (t.committed()) ++commits_;
  });
  tm_.Submit(std::move(reader));
  sim_.Run();
  EXPECT_EQ(commits_, 2);
  // The lock-free read finishes long before the migration's commit.
  EXPECT_LT(reader_done, Millis(40));
}

TEST_F(RaceTest, TwoMigrationsOfSameKeySecondSkips) {
  tm_.Submit(Migration(0, 0, 1, 1));
  tm_.Submit(Migration(0, 0, 1, 2));  // stale duplicate plan unit
  sim_.Run();
  EXPECT_EQ(commits_, 2);  // both commit; second is a no-op
  EXPECT_EQ(tm_.counters().repartition_ops_applied, 1u);
  EXPECT_TRUE(cluster_.storage(1).Contains(0));
  EXPECT_FALSE(cluster_.storage(0).Contains(0));
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(RaceTest, OppositeMigrationsSerializeCleanly) {
  tm_.Submit(Migration(0, 0, 1, 1));  // key 0: partition 0 -> 1
  tm_.Submit(Migration(1, 1, 0, 2));  // key 1: partition 1 -> 0
  sim_.Run();
  EXPECT_EQ(commits_, 2);
  EXPECT_EQ(*cluster_.routing_table().GetPrimary(0), 1u);
  EXPECT_EQ(*cluster_.routing_table().GetPrimary(1), 0u);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(RaceTest, WalRecoveryAfterMigrations) {
  tm_.Submit(Migration(0, 0, 1, 1));
  tm_.Submit(Writer(0, 99));
  sim_.Run();
  ASSERT_EQ(commits_, 2);
  // Rebuild partition 1 purely from its WAL; committed state must match.
  // (BulkLoad is not logged, so replay only the delta onto the loaded
  // base — here we check the migrated tuple is in the log.)
  bool found = false;
  for (const auto& rec : cluster_.storage(1).wal().records()) {
    if (rec.tuple.key == 0 &&
        rec.kind == storage::WalRecord::Kind::kInsert) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RaceTest, ReplicaCreateThenWriteKeepsCopiesIdentical) {
  auto t = std::make_unique<Transaction>();
  t->is_repartition = true;
  Operation create;
  create.kind = OpKind::kReplicaCreate;
  create.key = 0;
  create.target_partition = 1;
  create.repartition_op_id = 1;
  t->ops = {create};
  tm_.Submit(std::move(t));
  tm_.Submit(Writer(0, 31));
  sim_.Run();
  EXPECT_EQ(commits_, 2);
  ASSERT_TRUE(cluster_.storage(0).Contains(0));
  ASSERT_TRUE(cluster_.storage(1).Contains(0));
  EXPECT_EQ(cluster_.storage(0).Read(0)->content, 31);
  EXPECT_EQ(cluster_.storage(1).Read(0)->content, 31);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(RaceTest, ReplicaDeleteRemovesCopy) {
  // Create then delete a replica; the primary must survive.
  auto create = std::make_unique<Transaction>();
  create->is_repartition = true;
  Operation c;
  c.kind = OpKind::kReplicaCreate;
  c.key = 0;
  c.target_partition = 1;
  c.repartition_op_id = 1;
  create->ops = {c};
  tm_.Submit(std::move(create));
  sim_.Run();

  auto del = std::make_unique<Transaction>();
  del->is_repartition = true;
  Operation d;
  d.kind = OpKind::kReplicaDelete;
  d.key = 0;
  d.source_partition = 1;
  d.repartition_op_id = 2;
  del->ops = {d};
  tm_.Submit(std::move(del));
  sim_.Run();

  EXPECT_TRUE(cluster_.storage(0).Contains(0));
  EXPECT_FALSE(cluster_.storage(1).Contains(0));
  EXPECT_EQ(cluster_.routing_table().GetPlacement(0)->copy_count(), 1u);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(RaceTest, ClusterSurvivesCrashRecoveryOfEveryNode) {
  // Checkpoint the load base, run a mix of migrations and writes, then
  // crash-and-recover every node: the recovered cluster must be exactly
  // consistent with the routing table.
  cluster_.CheckpointAll();
  tm_.Submit(Migration(0, 0, 1, 1));
  tm_.Submit(Migration(3, 1, 0, 2));
  tm_.Submit(Writer(0, 41));
  tm_.Submit(Writer(3, 43));
  tm_.Submit(Writer(5, 45));
  sim_.Run();
  ASSERT_EQ(commits_, 5);
  for (uint32_t n = 0; n < 2; ++n) {
    ASSERT_TRUE(cluster_.storage(n).CrashAndRecover().ok()) << n;
  }
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
  EXPECT_EQ(cluster_.storage(1).Read(0)->content, 41);
  EXPECT_EQ(cluster_.storage(0).Read(3)->content, 43);
  EXPECT_EQ(cluster_.storage(1).Read(5)->content, 45);
}

// ---------------------------------------------------------------------
// Experiment matrix sweep: invariants for every combination.
// ---------------------------------------------------------------------

struct MatrixCase {
  SchedulingStrategy strategy;
  double utilization;
  workload::PopularityDist dist;
  double alpha;
};

class ExperimentMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ExperimentMatrix, InvariantsHold) {
  const MatrixCase& param = GetParam();
  engine::ExperimentConfig config;
  config.workload_options.spec = param.dist == workload::PopularityDist::kZipf
                        ? workload::WorkloadSpec::Zipf(param.alpha)
                        : workload::WorkloadSpec::Uniform(param.alpha);
  config.workload_options.spec.num_templates = 300;
  config.workload_options.spec.num_keys = 6'000;
  config.workload_options.utilization = param.utilization;
  config.warmup_intervals = 2;
  config.measured_intervals = 15;
  config.deployment.strategy = param.strategy;
  config.seed = 99;
  engine::ExperimentResult r = engine::Experiment(config).Run();

  // 1. Storage/routing consistency after quiesce.
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  // 2. RepRate is a monotone fraction.
  EXPECT_LE(r.rep_rate.Max(), 1.0);
  for (size_t i = 1; i < r.rep_rate.size(); ++i) {
    EXPECT_GE(r.rep_rate.at(i), r.rep_rate.at(i - 1));
  }
  // 3. Plan units never over-applied.
  EXPECT_LE(r.plan_ops_applied, r.plan_ops_total);
  // 4. Failure rate bounded.
  for (double f : r.failure_rate.values()) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  // 5. Accounting closes once drained.
  if (r.drained) {
    EXPECT_EQ(r.counters.submitted_normal,
              r.counters.committed_normal + r.counters.aborted_normal);
  }
}

std::string MatrixName(
    const ::testing::TestParamInfo<MatrixCase>& info) {
  const MatrixCase& c = info.param;
  std::string name = StrategyName(c.strategy);
  name += c.utilization > 1.0 ? "_High" : "_Low";
  name += c.dist == workload::PopularityDist::kZipf ? "_Zipf" : "_Uniform";
  name += "_a";
  name += std::to_string(static_cast<int>(c.alpha * 100));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExperimentMatrix,
    ::testing::Values(
        MatrixCase{SchedulingStrategy::kApplyAll, 1.30,
                   workload::PopularityDist::kZipf, 1.0},
        MatrixCase{SchedulingStrategy::kAfterAll, 1.30,
                   workload::PopularityDist::kZipf, 1.0},
        MatrixCase{SchedulingStrategy::kFeedback, 1.30,
                   workload::PopularityDist::kUniform, 1.0},
        MatrixCase{SchedulingStrategy::kPiggyback, 1.30,
                   workload::PopularityDist::kUniform, 0.6},
        MatrixCase{SchedulingStrategy::kHybrid, 1.30,
                   workload::PopularityDist::kZipf, 0.6},
        MatrixCase{SchedulingStrategy::kApplyAll, 0.65,
                   workload::PopularityDist::kUniform, 0.2},
        MatrixCase{SchedulingStrategy::kAfterAll, 0.65,
                   workload::PopularityDist::kUniform, 1.0},
        MatrixCase{SchedulingStrategy::kFeedback, 0.65,
                   workload::PopularityDist::kZipf, 0.2},
        MatrixCase{SchedulingStrategy::kPiggyback, 0.65,
                   workload::PopularityDist::kZipf, 1.0},
        MatrixCase{SchedulingStrategy::kHybrid, 0.65,
                   workload::PopularityDist::kUniform, 1.0}),
    MatrixName);

}  // namespace
}  // namespace soap
