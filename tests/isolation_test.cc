// Tests for the serializable isolation level (S2PL) and the external
// capacity-disturbance mechanism.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/transaction_manager.h"
#include "src/engine/experiment.h"

namespace soap {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::IsolationLevel;
using cluster::TransactionManager;
using txn::OpKind;
using txn::Operation;
using txn::Transaction;

class SerializableTest : public ::testing::Test {
 protected:
  SerializableTest() : cluster_(&sim_, Config()), tm_(&cluster_) {
    for (storage::TupleKey k = 0; k < 10; ++k) {
      storage::Tuple t;
      t.key = k;
      t.content = 100 + static_cast<int64_t>(k);
      EXPECT_TRUE(cluster_.LoadTuple(t, k % 2).ok());
    }
    tm_.set_completion_callback(
        [this](const Transaction& t) { done_.push_back(t); });
  }

  static ClusterConfig Config() {
    ClusterConfig c;
    c.num_nodes = 2;
    c.workers_per_node = 2;
    c.num_keys = 10;
    c.isolation = IsolationLevel::kSerializable;
    c.network.jitter = 0;
    return c;
  }

  static Operation Read(storage::TupleKey key) {
    Operation op;
    op.kind = OpKind::kRead;
    op.key = key;
    return op;
  }
  static Operation Write(storage::TupleKey key, int64_t v) {
    Operation op;
    op.kind = OpKind::kWrite;
    op.key = key;
    op.write_value = v;
    return op;
  }

  std::unique_ptr<Transaction> Make(std::vector<Operation> ops) {
    auto t = std::make_unique<Transaction>();
    t->ops = std::move(ops);
    return t;
  }

  sim::Simulator sim_;
  Cluster cluster_;
  TransactionManager tm_;
  std::vector<Transaction> done_;
};

TEST_F(SerializableTest, ReadersTakeSharedLocks) {
  bool probed = false;
  tm_.Submit(Make({Read(0), Read(2)}));
  sim_.At(Millis(3), [&] {
    // Mid-execution: the first read's shared lock is held.
    EXPECT_GT(cluster_.lock_manager().LockedKeyCount(), 0u);
    probed = true;
  });
  sim_.Run();
  EXPECT_TRUE(probed);
  EXPECT_TRUE(done_[0].committed());
  // All locks released at completion.
  EXPECT_EQ(cluster_.lock_manager().LockedKeyCount(), 0u);
}

TEST_F(SerializableTest, ReadersCoexist) {
  tm_.Submit(Make({Read(0), Read(2), Read(4)}));
  tm_.Submit(Make({Read(0), Read(2), Read(4)}));
  sim_.Run();
  ASSERT_EQ(done_.size(), 2u);
  EXPECT_TRUE(done_[0].committed());
  EXPECT_TRUE(done_[1].committed());
  // Shared locks never queued against each other.
  EXPECT_EQ(cluster_.lock_manager().stats().waits, 0u);
}

TEST_F(SerializableTest, ReaderBlocksMigrationUntilCommit) {
  tm_.Submit(Make({Read(0), Read(2), Read(4), Read(6), Read(8)}));
  auto mig = std::make_unique<Transaction>();
  mig->is_repartition = true;
  Operation ins;
  ins.kind = OpKind::kMigrateInsert;
  ins.key = 0;
  ins.source_partition = 0;
  ins.target_partition = 1;
  ins.repartition_op_id = 1;
  Operation del = ins;
  del.kind = OpKind::kMigrateDelete;
  mig->ops = {ins, del};
  tm_.Submit(std::move(mig));
  sim_.Run();
  ASSERT_EQ(done_.size(), 2u);
  // The reader committed before the migration could take its X lock.
  EXPECT_FALSE(done_[0].is_repartition);
  EXPECT_TRUE(done_[0].committed());
  EXPECT_TRUE(done_[1].committed());
  EXPECT_GT(cluster_.lock_manager().stats().waits, 0u);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(SerializableTest, UpgradeConflictResolvedByDeadlockDetection) {
  // Two transactions read the same key then write it: both hold S, both
  // need X at commit -> one must die (classic upgrade deadlock).
  tm_.Submit(Make({Read(0), Write(0, 1)}));
  tm_.Submit(Make({Read(0), Write(0, 2)}));
  sim_.Run();
  ASSERT_EQ(done_.size(), 2u);
  int committed = 0, deadlocked = 0;
  for (const auto& t : done_) {
    if (t.committed()) ++committed;
    if (t.aborted() && t.abort_reason == txn::AbortReason::kDeadlock) {
      ++deadlocked;
    }
  }
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(deadlocked, 1);
  // The survivor's value is in place.
  const int64_t v = cluster_.storage(0).Read(0)->content;
  EXPECT_TRUE(v == 1 || v == 2);
}

TEST_F(SerializableTest, ReadCommittedHasNoReadLocks) {
  ClusterConfig config = Config();
  config.isolation = IsolationLevel::kReadCommitted;
  sim::Simulator sim;
  Cluster cluster(&sim, config);
  for (storage::TupleKey k = 0; k < 10; ++k) {
    storage::Tuple t;
    t.key = k;
    ASSERT_TRUE(cluster.LoadTuple(t, k % 2).ok());
  }
  TransactionManager tm(&cluster);
  auto t = std::make_unique<Transaction>();
  t->ops = {Read(0), Read(2)};
  tm.Submit(std::move(t));
  sim.Run();
  EXPECT_EQ(cluster.lock_manager().stats().acquires, 0u);
}

TEST(DisturbanceTest, ExternalLoadConsumesCapacityNotPv) {
  engine::ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0);
  config.workload_options.spec.num_templates = 200;
  config.workload_options.spec.num_keys = 4'000;
  config.workload_options.utilization = 0.65;
  config.warmup_intervals = 2;
  config.measured_intervals = 10;
  config.deployment.strategy = SchedulingStrategy::kHybrid;
  config.fault_options.disturbance.enabled = true;
  config.fault_options.disturbance.node = 0;
  config.fault_options.disturbance.start_interval = 0;
  config.fault_options.disturbance.end_interval = 12;
  config.fault_options.disturbance.fraction = 0.5;
  config.seed = 3;
  engine::ExperimentResult with = engine::Experiment(config).Run();

  config.fault_options.disturbance.enabled = false;
  engine::ExperimentResult without = engine::Experiment(config).Run();

  // The run still completes and audits clean under the disturbance.
  EXPECT_TRUE(with.audit.ok());
  EXPECT_TRUE(with.plan_completed);
  // The PV-facing utilization series counts normal+repartition work only,
  // so the two runs' utilization stays comparable even though the
  // disturbed cluster is busier in total.
  EXPECT_NEAR(with.utilization.Mean(), without.utilization.Mean(), 0.1);
}

}  // namespace
}  // namespace soap
