#include "src/common/json.h"

#include <gtest/gtest.h>

#include <string>

namespace soap::json {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(Escape("plain"), "plain");
  EXPECT_EQ(Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(Escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(Escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->AsBool());
  EXPECT_FALSE(Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Parse("3.5")->AsDouble(), 3.5);
  EXPECT_EQ(Parse("-12")->AsInt64(), -12);
  EXPECT_EQ(Parse("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, StringEscapeRoundTrip) {
  const std::string original = "line1\nline2\t\"quoted\" back\\slash";
  Result<Value> parsed = Parse("\"" + Escape(original) + "\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->AsString(), original);
}

TEST(JsonParseTest, ObjectsKeepInsertionOrderAndFindWorks) {
  Result<Value> parsed =
      Parse(R"({"b":1,"a":{"nested":[1,2,3]},"c":"x"})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  ASSERT_EQ(parsed->AsObject().size(), 3u);
  EXPECT_EQ(parsed->AsObject()[0].first, "b");
  EXPECT_EQ(parsed->AsObject()[1].first, "a");
  const Value* nested = parsed->Find("a");
  ASSERT_NE(nested, nullptr);
  ASSERT_NE(nested->Find("nested"), nullptr);
  EXPECT_EQ(nested->Find("nested")->AsArray().size(), 3u);
  EXPECT_EQ(parsed->Find("missing"), nullptr);
  EXPECT_EQ(parsed->GetString("c"), "x");
  EXPECT_EQ(parsed->GetUint64("b"), 1u);
  EXPECT_EQ(parsed->GetUint64("absent", 7), 7u);
}

TEST(JsonParseTest, LargeIntegersSurviveExactly) {
  // 2^52 fits a double exactly; every counter we serialise is below it.
  Result<Value> parsed = Parse("{\"n\":4503599627370496}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetUint64("n"), 4503599627370496u);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("{\"a\":}").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("nul").ok());
  EXPECT_FALSE(Parse("1 2").ok());  // trailing tokens
}

TEST(JsonParseLinesTest, OneValuePerLineSkippingBlanks) {
  Result<std::vector<Value>> lines =
      ParseLines("{\"a\":1}\n\n{\"b\":2}\n");
  ASSERT_TRUE(lines.ok()) << lines.status().ToString();
  ASSERT_EQ(lines->size(), 2u);
  EXPECT_EQ((*lines)[0].GetUint64("a"), 1u);
  EXPECT_EQ((*lines)[1].GetUint64("b"), 2u);
}

TEST(JsonParseLinesTest, ReportsFailingLineNumber) {
  Result<std::vector<Value>> lines = ParseLines("{\"ok\":1}\n{broken\n");
  ASSERT_FALSE(lines.ok());
  EXPECT_NE(lines.status().ToString().find("line 2"), std::string::npos)
      << lines.status().ToString();
}

}  // namespace
}  // namespace soap::json
