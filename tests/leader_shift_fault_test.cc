// Leader-shift fault matrix: the kLeaderShift placement action under
// contention and failure. A shift racing an in-flight replica-create, the
// guard refusing shifts onto partitions that hold no copy, WAL-replay
// idempotency of the shift (the recovery image must match the live image,
// and re-applying a shift is a no-op), a primary crash during a
// lion-enabled run (promotion and the checker must agree on the new
// leader), and the hidden --check_break=double_primary corruption being
// detected — a shifted key never has zero or two primaries.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/transaction_manager.h"
#include "src/engine/experiment.h"

namespace soap {
namespace {

using txn::OpKind;
using txn::Operation;
using txn::Transaction;

class LeaderShiftTmTest : public ::testing::Test {
 protected:
  LeaderShiftTmTest() : cluster_(&sim_, MakeConfig()), tm_(&cluster_) {
    for (storage::TupleKey k = 0; k < 30; ++k) {
      storage::Tuple t;
      t.key = k;
      t.content = static_cast<int64_t>(k) * 10;
      EXPECT_TRUE(cluster_.LoadTuple(t, k % 3).ok());
    }
    cluster_.CheckpointAll();  // seal the bulk load so WALs stay replayable
  }

  static cluster::ClusterConfig MakeConfig() {
    cluster::ClusterConfig c;
    c.num_nodes = 3;
    c.workers_per_node = 2;
    c.num_keys = 30;
    c.network.jitter = 0;
    return c;
  }

  static Operation RepOp(OpKind kind, storage::TupleKey key, uint32_t from,
                         uint32_t to, uint64_t rep_id) {
    Operation op;
    op.kind = kind;
    op.key = key;
    op.source_partition = from;
    op.target_partition = to;
    op.repartition_op_id = rep_id;
    return op;
  }

  std::unique_ptr<Transaction> RepTxn(std::vector<Operation> ops) {
    auto t = std::make_unique<Transaction>();
    t->is_repartition = true;
    t->ops = std::move(ops);
    return t;
  }

  void VerifyAllRecoveryImages() {
    for (uint32_t p = 0; p < cluster_.num_nodes(); ++p) {
      EXPECT_TRUE(cluster_.storage(p).VerifyRecoveryImage().ok())
          << "partition " << p;
    }
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::TransactionManager tm_;
};

TEST_F(LeaderShiftTmTest, ShiftAppliesOntoAnExistingReplica) {
  // Key 0 lives on partition 0. Install a replica on 1, then shift.
  tm_.Submit(RepTxn({RepOp(OpKind::kReplicaCreate, 0, 0, 1, 1)}));
  sim_.Run();
  tm_.Submit(RepTxn({RepOp(OpKind::kLeaderShift, 0, 0, 1, 2)}));
  sim_.Run();

  Result<router::Placement> p = cluster_.routing_table().GetPlacement(0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->primary, 1u);
  ASSERT_EQ(p->replicas.size(), 1u);
  EXPECT_EQ(p->replicas[0], 0u);  // old primary demoted, not dropped
  EXPECT_EQ(tm_.counters().leader_shifts_applied, 1u);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
  VerifyAllRecoveryImages();
}

TEST_F(LeaderShiftTmTest, ShiftWithoutAReplicaIsRefused) {
  // No copy on partition 2: the guard must skip the op, not corrupt
  // routing by promoting a partition that stores nothing.
  tm_.Submit(RepTxn({RepOp(OpKind::kLeaderShift, 0, 0, 2, 1)}));
  sim_.Run();
  EXPECT_EQ(*cluster_.routing_table().GetPrimary(0), 0u);
  EXPECT_EQ(tm_.counters().leader_shifts_applied, 0u);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(LeaderShiftTmTest, ShiftRacingReplicaCreateStaysConsistent) {
  // Both transactions are in flight at once: the create that installs the
  // copy on partition 1 and the shift that wants to promote it. Whichever
  // order the simulator serializes them in, the run must end with exactly
  // one primary, a coherent copy set, and a replayable WAL.
  tm_.Submit(RepTxn({RepOp(OpKind::kReplicaCreate, 0, 0, 1, 1)}));
  tm_.Submit(RepTxn({RepOp(OpKind::kLeaderShift, 0, 0, 1, 2)}));
  sim_.Run();

  Result<router::Placement> p = cluster_.routing_table().GetPlacement(0);
  ASSERT_TRUE(p.ok());
  // Whatever interleaving (and whichever loser a lock conflict aborts):
  // the shift either won (primary 1, after the create committed) or was
  // refused by the guard (primary 0) — never anything in between.
  EXPECT_GE(p->copy_count(), 1u);
  EXPECT_LE(p->copy_count(), 2u);
  EXPECT_TRUE(p->primary == 0u || p->primary == 1u);
  if (p->primary == 1u) EXPECT_EQ(p->copy_count(), 2u);
  EXPECT_LE(tm_.counters().leader_shifts_applied, 1u);
  // The primary is never also listed as a replica.
  for (uint32_t rep : p->replicas) EXPECT_NE(rep, p->primary);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
  VerifyAllRecoveryImages();
}

TEST_F(LeaderShiftTmTest, ReapplyingAShiftIsIdempotent) {
  tm_.Submit(RepTxn({RepOp(OpKind::kReplicaCreate, 0, 0, 1, 1)}));
  sim_.Run();
  tm_.Submit(RepTxn({RepOp(OpKind::kLeaderShift, 0, 0, 1, 2)}));
  sim_.Run();
  ASSERT_EQ(*cluster_.routing_table().GetPrimary(0), 1u);

  // A retry delivers the same op again (same repartition op id, same
  // source/target). The role swap must not bounce back and forth.
  tm_.Submit(RepTxn({RepOp(OpKind::kLeaderShift, 0, 0, 1, 2)}));
  sim_.Run();

  Result<router::Placement> p = cluster_.routing_table().GetPlacement(0);
  EXPECT_EQ(p->primary, 1u);
  EXPECT_EQ(p->copy_count(), 2u);
  EXPECT_EQ(tm_.counters().leader_shifts_applied, 1u);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
  // WAL replay of the whole history (create + shift + retry) reproduces
  // the live storage image on every partition.
  VerifyAllRecoveryImages();
}

// --- Engine-level fault matrix ---------------------------------------------

// Affinity-hub pairing with write-through borrowers: each hub key's
// single borrower partition is both a split-reader (earning a copy) and
// the sole write source (qualifying that copy for promotion), so the
// lion planner reliably emits leader shifts within a few cycles.
engine::ExperimentConfig LionHubConfig() {
  engine::ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0);
  config.workload_options.spec.num_templates = 200;
  config.workload_options.spec.num_keys = 2'000;
  workload::DriftPhase hub;
  hub.start_interval = 0;
  hub.zipf_s = config.workload_options.spec.zipf_s;
  hub.pair_fraction = 0.5;
  hub.pair_hub = config.cluster.num_nodes;
  hub.pair_affinity = true;
  hub.pair_write = 0.125;
  config.workload_options.spec.phases.push_back(hub);
  config.workload_options.utilization = 0.65;
  config.warmup_intervals = 2;
  config.measured_intervals = 12;
  config.deployment.strategy = SchedulingStrategy::kHybrid;
  config.seed = 11;
  config.planner_options.enabled = true;
  config.replicas.enabled = true;
  config.replicas.max_copies = config.cluster.num_nodes;
  config.lion.enabled = true;
  return config;
}

bool Has(const check::CheckReport& report, const std::string& check) {
  for (const check::Violation& v : report.violations) {
    if (v.check == check) return true;
  }
  return false;
}

TEST(LeaderShiftFaultTest, CleanLionRunPassesTheChecker) {
  engine::ExperimentConfig config = LionHubConfig();
  config.check.enabled = true;
  engine::ExperimentResult r = engine::Experiment(config).Run();
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_GT(r.planner_stats.leader_shifts_emitted, 0u);
  EXPECT_TRUE(r.check_report.ok()) << r.check_report.ToString();
  EXPECT_GT(r.invariant_checks, 0u);
  EXPECT_EQ(r.check_breaks_fired, 0u);
}

TEST(LeaderShiftFaultTest, PrimaryCrashDuringShiftsRecoversCleanly) {
  // Node 1 crashes while the lion planner is actively shifting leaders
  // and creating replicas. In-flight shifts abort with their carrier
  // transactions; promotion after the crash must agree with the
  // post-shift routing (the checker's sweeps would flag a stale or
  // doubled primary).
  engine::ExperimentConfig config = LionHubConfig();
  config.check.enabled = true;
  config.fault_options.spec = "crash:node=1,at=150s,down=30s";
  engine::ExperimentResult r = engine::Experiment(config).Run();
  EXPECT_EQ(r.faults_crashes, 1u);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_TRUE(r.check_report.ok()) << r.check_report.ToString();
  EXPECT_EQ(r.tpc_stats.protocols_run,
            r.tpc_stats.committed + r.tpc_stats.aborted);
}

TEST(LeaderShiftFaultTest, CrashedLionRunIsDeterministic) {
  engine::ExperimentConfig config = LionHubConfig();
  config.fault_options.spec = "crash:node=1,at=150s,down=30s";
  engine::ExperimentResult a = engine::Experiment(config).Run();
  engine::ExperimentResult b = engine::Experiment(config).Run();
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.counters.leader_shifts_applied,
            b.counters.leader_shifts_applied);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(LeaderShiftFaultTest, BreakDoublePrimaryIsDetected) {
  // The hidden corruption half-applies one shift: the target becomes
  // primary while staying in the replica list. The OnLeaderShift
  // invariant must catch the doubled partition.
  engine::ExperimentConfig config = LionHubConfig();
  config.check.break_mode = "double_primary";
  engine::ExperimentResult r = engine::Experiment(config).Run();
  EXPECT_GT(r.planner_stats.leader_shifts_emitted, 0u);
  EXPECT_EQ(r.check_breaks_fired, 1u);
  ASSERT_FALSE(r.check_report.ok());
  EXPECT_TRUE(Has(r.check_report, "double_primary"))
      << r.check_report.ToString();
}

}  // namespace
}  // namespace soap
