// soap::lion: the adaptive replica provisioner (budgeted replica cache,
// LRU/heat eviction, predictive admission) as a unit, and the lion planner
// path end-to-end through the engine — leader shifts emitted and applied,
// budget pressure producing evictions/denials, and the whole thing staying
// clean under the consistency checker.

#include "src/lion/provisioner.h"

#include <gtest/gtest.h>

#include <optional>

#include "src/engine/experiment.h"

namespace soap::lion {
namespace {

LionConfig MakeConfig(uint32_t budget, EvictPolicy evict = EvictPolicy::kLru) {
  LionConfig c;
  c.enabled = true;
  c.replica_budget = budget;
  c.evict = evict;
  return c;
}

// Routing over 10 keys / 4 partitions, round-robin, with replicas of keys
// 5 and 9 (both primaried on partition 1) hosted on partition 2.
void FillRouting(router::RoutingTable* routing) {
  EXPECT_TRUE(routing->AssignRoundRobin(0, 10, 4).ok());
  EXPECT_TRUE(routing->AddReplica(5, 2).ok());
  EXPECT_TRUE(routing->AddReplica(9, 2).ok());
}

TEST(ProvisionerTest, BudgetChargesAndReleases) {
  Provisioner prov(MakeConfig(2));
  router::RoutingTable empty(10);
  EXPECT_TRUE(empty.AssignRoundRobin(0, 10, 4).ok());
  prov.BeginCycle(empty);
  EXPECT_TRUE(prov.ChargeCreate(0));
  EXPECT_TRUE(prov.ChargeCreate(0));
  EXPECT_FALSE(prov.ChargeCreate(0));  // budget of 2 exhausted
  EXPECT_TRUE(prov.ChargeCreate(1));   // budgets are per partition
  prov.Release(0);
  EXPECT_TRUE(prov.ChargeCreate(0));  // the freed slot is reusable
}

TEST(ProvisionerTest, BeginCycleSnapshotsLiveOccupancy) {
  Provisioner prov(MakeConfig(2));
  router::RoutingTable routing(10);
  FillRouting(&routing);
  prov.BeginCycle(routing);
  // Partition 2 already hosts 2 replicas (keys 5 and 9): budget full.
  EXPECT_FALSE(prov.ChargeCreate(2));
  // An eviction frees a slot within the same cycle.
  prov.Release(2);
  EXPECT_TRUE(prov.ChargeCreate(2));
}

TEST(ProvisionerTest, LruEvictsTheLeastRecentlyTouchedCopy) {
  Provisioner prov(MakeConfig(2));
  router::RoutingTable routing(10);
  FillRouting(&routing);
  prov.BeginCycle(routing);
  prov.Touch(5, 2);  // key 5 pulled mass this cycle; key 9 never did
  prov.BeginCycle(routing);
  std::optional<storage::TupleKey> victim =
      prov.PickEviction(2, /*except=*/7, nullptr);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 9u);
}

TEST(ProvisionerTest, HeatEvictsTheColdestCopy) {
  Provisioner prov(MakeConfig(2, EvictPolicy::kHeat));
  router::RoutingTable routing(10);
  FillRouting(&routing);
  prov.BeginCycle(routing);
  auto heat = [](storage::TupleKey key) -> uint64_t {
    return key == 5 ? 100 : 3;  // key 9 is cold
  };
  std::optional<storage::TupleKey> victim = prov.PickEviction(2, 7, heat);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 9u);
}

TEST(ProvisionerTest, EvictionNeverPicksTheProtectedOrAPickedKey) {
  Provisioner prov(MakeConfig(2));
  router::RoutingTable routing(10);
  FillRouting(&routing);
  prov.BeginCycle(routing);
  // Protecting key 5 leaves only key 9; picking it twice is refused.
  std::optional<storage::TupleKey> first = prov.PickEviction(2, 5, nullptr);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 9u);
  EXPECT_FALSE(prov.PickEviction(2, 5, nullptr).has_value());
  // A partition hosting nothing has no victims at all.
  EXPECT_FALSE(prov.PickEviction(3, 5, nullptr).has_value());
}

TEST(ProvisionerTest, LruTiesBreakTowardTheLowestKey) {
  Provisioner prov(MakeConfig(2));
  router::RoutingTable routing(10);
  FillRouting(&routing);
  prov.BeginCycle(routing);  // neither copy ever touched: tied at 0
  std::optional<storage::TupleKey> victim = prov.PickEviction(2, 7, nullptr);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 5u);
}

TEST(ProvisionerTest, PredictedShareExtrapolatesARisingTrend) {
  Provisioner prov(MakeConfig(4));
  router::RoutingTable routing(10);
  FillRouting(&routing);
  prov.BeginCycle(routing);
  // First sighting: no history, the prediction is the raw share.
  EXPECT_DOUBLE_EQ(prov.PredictedShare(5, 2, 0.2), 0.2);
  prov.BeginCycle(routing);
  // Share rose 0.2 -> 0.4: one-step linear extrapolation predicts 0.6.
  EXPECT_DOUBLE_EQ(prov.PredictedShare(5, 2, 0.4), 0.6);
  prov.BeginCycle(routing);
  // A falling share is never extrapolated downward past itself.
  EXPECT_DOUBLE_EQ(prov.PredictedShare(5, 2, 0.3), 0.3);
}

TEST(ProvisionerTest, TrendStateAgesOutAfterASkippedCycle) {
  Provisioner prov(MakeConfig(4));
  router::RoutingTable routing(10);
  FillRouting(&routing);
  prov.BeginCycle(routing);
  EXPECT_DOUBLE_EQ(prov.PredictedShare(5, 2, 0.2), 0.2);
  prov.BeginCycle(routing);
  prov.BeginCycle(routing);  // the key skipped a cycle: stale sample gone
  EXPECT_DOUBLE_EQ(prov.PredictedShare(5, 2, 0.5), 0.5);
}

// --- Engine integration ----------------------------------------------------
// An affinity-hub workload: each hub key is read both by its home
// partition and by a single borrower partition, and *written* only by
// that borrower (pair_write flips the borrowed read positions into
// writes). The borrower's read pull earns it a split-reader copy, the
// borrower's 100% write share then qualifies that copy for promotion —
// exactly the existing-copy leader-shift path lion exists for.

engine::ExperimentConfig LionConfig_(uint32_t budget) {
  engine::ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0);
  config.workload_options.spec.num_templates = 200;
  config.workload_options.spec.num_keys = 2'000;
  workload::DriftPhase hub;
  hub.start_interval = 0;
  hub.zipf_s = config.workload_options.spec.zipf_s;
  hub.pair_fraction = 0.5;
  hub.pair_hub = config.cluster.num_nodes;
  hub.pair_affinity = true;
  hub.pair_write = 0.125;
  config.workload_options.spec.phases.push_back(hub);
  config.workload_options.utilization = 0.65;
  config.warmup_intervals = 2;
  config.measured_intervals = 12;
  config.deployment.strategy = SchedulingStrategy::kHybrid;
  config.seed = 11;
  config.planner_options.enabled = true;
  config.replicas.enabled = true;
  config.replicas.max_copies = config.cluster.num_nodes;
  config.lion.enabled = true;
  config.lion.replica_budget = budget;
  return config;
}

TEST(LionEngineTest, HubRunShiftsLeadersAndStaysConsistent) {
  engine::ExperimentResult r =
      engine::Experiment(LionConfig_(/*budget=*/64)).Run();
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_TRUE(r.lion_enabled);
  // The planner found write-hot hub keys worth shifting, and the TM
  // actually applied shifts.
  EXPECT_GT(r.planner_stats.leader_shifts_emitted, 0u);
  EXPECT_GT(r.counters.leader_shifts_applied, 0u);
  // The distributed-write series is populated (lion's target metric).
  EXPECT_GT(r.distributed_write_ratio.size(), 0u);
}

TEST(LionEngineTest, TinyBudgetForcesEvictionOrDenial) {
  engine::ExperimentResult r =
      engine::Experiment(LionConfig_(/*budget=*/1)).Run();
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_GT(r.planner_stats.replicas_evicted_budget +
                r.planner_stats.replica_budget_denials,
            0u);
}

TEST(LionEngineTest, DeterministicAcrossRuns) {
  engine::ExperimentResult a =
      engine::Experiment(LionConfig_(/*budget=*/8)).Run();
  engine::ExperimentResult b =
      engine::Experiment(LionConfig_(/*budget=*/8)).Run();
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.counters.committed_normal, b.counters.committed_normal);
  EXPECT_EQ(a.counters.leader_shifts_applied,
            b.counters.leader_shifts_applied);
  EXPECT_EQ(a.planner_stats.leader_shifts_emitted,
            b.planner_stats.leader_shifts_emitted);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(LionEngineTest, LionOffLeavesTheStaticReplicaPathUntouched) {
  // With lion disabled the run must not report lion state at all — the
  // byte-identity goldens (events/committed) are pinned in
  // parallel_runner_test and the determinism tests; here we pin the
  // switch itself.
  engine::ExperimentConfig config = LionConfig_(/*budget=*/64);
  config.lion.enabled = false;
  engine::ExperimentResult r = engine::Experiment(config).Run();
  EXPECT_FALSE(r.lion_enabled);
  EXPECT_EQ(r.planner_stats.leader_shifts_emitted, 0u);
  EXPECT_EQ(r.counters.leader_shifts_applied, 0u);
}

}  // namespace
}  // namespace soap::lion
