#include "src/txn/lock_manager.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/random.h"

namespace soap::txn {
namespace {

constexpr LockMode S = LockMode::kShared;
constexpr LockMode X = LockMode::kExclusive;

TEST(LockManagerTest, ExclusiveGrantImmediate) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kGranted);
  EXPECT_TRUE(lm.Holds(1, 100, X));
  EXPECT_EQ(lm.LockedKeyCount(), 1u);
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, 100, S, [] {}), AcquireOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(2, 100, S, [] {}), AcquireOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(3, 100, S, [] {}), AcquireOutcome::kGranted);
  EXPECT_TRUE(lm.Holds(1, 100, S));
  EXPECT_TRUE(lm.Holds(3, 100, S));
}

TEST(LockManagerTest, ExclusiveBlocksExclusive) {
  LockManager lm;
  bool granted = false;
  ASSERT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(2, 100, X, [&] { granted = true; }),
            AcquireOutcome::kQueued);
  EXPECT_FALSE(granted);
  EXPECT_EQ(lm.WaiterCount(100), 1u);
  lm.Release(1, 100);
  EXPECT_TRUE(granted);
  EXPECT_TRUE(lm.Holds(2, 100, X));
}

TEST(LockManagerTest, SharedBlocksExclusive) {
  LockManager lm;
  bool granted = false;
  ASSERT_EQ(lm.Acquire(1, 100, S, [] {}), AcquireOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(2, 100, X, [&] { granted = true; }),
            AcquireOutcome::kQueued);
  lm.Release(1, 100);
  EXPECT_TRUE(granted);
}

TEST(LockManagerTest, FifoPreventsSharedOvertakingExclusive) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, S, [] {}), AcquireOutcome::kGranted);
  bool x_granted = false, s_granted = false;
  EXPECT_EQ(lm.Acquire(2, 100, X, [&] { x_granted = true; }),
            AcquireOutcome::kQueued);
  // A later shared request must queue behind the exclusive waiter even
  // though it is compatible with the current holder.
  EXPECT_EQ(lm.Acquire(3, 100, S, [&] { s_granted = true; }),
            AcquireOutcome::kQueued);
  lm.Release(1, 100);
  EXPECT_TRUE(x_granted);
  EXPECT_FALSE(s_granted);
  lm.Release(2, 100);
  EXPECT_TRUE(s_granted);
}

TEST(LockManagerTest, BatchGrantOfConsecutiveSharedWaiters) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kGranted);
  int granted = 0;
  for (TxnId id = 2; id <= 4; ++id) {
    EXPECT_EQ(lm.Acquire(id, 100, S, [&] { ++granted; }),
              AcquireOutcome::kQueued);
  }
  lm.Release(1, 100);
  EXPECT_EQ(granted, 3);  // all compatible shared waiters granted together
}

TEST(LockManagerTest, ReacquireHeldLockIsGranted) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(1, 100, S, [] {}), AcquireOutcome::kGranted);
}

TEST(LockManagerTest, UpgradeSoleHolder) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, S, [] {}), AcquireOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kGranted);
  EXPECT_TRUE(lm.Holds(1, 100, X));
  EXPECT_EQ(lm.stats().upgrades, 1u);
}

TEST(LockManagerTest, UpgradeWaitsForOtherSharers) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, S, [] {}), AcquireOutcome::kGranted);
  ASSERT_EQ(lm.Acquire(2, 100, S, [] {}), AcquireOutcome::kGranted);
  bool upgraded = false;
  EXPECT_EQ(lm.Acquire(1, 100, X, [&] { upgraded = true; }),
            AcquireOutcome::kQueued);
  EXPECT_FALSE(upgraded);
  lm.Release(2, 100);
  EXPECT_TRUE(upgraded);
  EXPECT_TRUE(lm.Holds(1, 100, X));
}

TEST(LockManagerTest, CompetingUpgradesDeadlock) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, S, [] {}), AcquireOutcome::kGranted);
  ASSERT_EQ(lm.Acquire(2, 100, S, [] {}), AcquireOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kQueued);
  // The second upgrader would wait for txn 1, which waits for txn 2.
  EXPECT_EQ(lm.Acquire(2, 100, X, [] {}), AcquireOutcome::kDeadlock);
  EXPECT_EQ(lm.stats().deadlocks, 1u);
}

TEST(LockManagerTest, TwoKeyCycleDetected) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kGranted);
  ASSERT_EQ(lm.Acquire(2, 200, X, [] {}), AcquireOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(1, 200, X, [] {}), AcquireOutcome::kQueued);
  EXPECT_EQ(lm.Acquire(2, 100, X, [] {}), AcquireOutcome::kDeadlock);
}

TEST(LockManagerTest, ThreeTxnCycleDetected) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kGranted);
  ASSERT_EQ(lm.Acquire(2, 200, X, [] {}), AcquireOutcome::kGranted);
  ASSERT_EQ(lm.Acquire(3, 300, X, [] {}), AcquireOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(1, 200, X, [] {}), AcquireOutcome::kQueued);
  EXPECT_EQ(lm.Acquire(2, 300, X, [] {}), AcquireOutcome::kQueued);
  EXPECT_EQ(lm.Acquire(3, 100, X, [] {}), AcquireOutcome::kDeadlock);
}

TEST(LockManagerTest, NoFalseDeadlockOnChain) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kGranted);
  EXPECT_EQ(lm.Acquire(2, 100, X, [] {}), AcquireOutcome::kQueued);
  ASSERT_EQ(lm.Acquire(3, 200, X, [] {}), AcquireOutcome::kGranted);
  // 3 -> 100 would wait on 1; no cycle.
  EXPECT_EQ(lm.Acquire(3, 100, X, [] {}), AcquireOutcome::kQueued);
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  // One waiter per key (a transaction may wait for at most one lock).
  LockManager lm2;
  for (storage::TupleKey k : {1ULL, 2ULL, 3ULL}) {
    ASSERT_EQ(lm2.Acquire(1, k, X, [] {}), AcquireOutcome::kGranted);
  }
  int grants = 0;
  for (TxnId id = 2; id <= 4; ++id) {
    EXPECT_EQ(lm2.Acquire(id, id - 1, X, [&] { ++grants; }),
              AcquireOutcome::kQueued);
  }
  lm2.ReleaseAll(1);
  EXPECT_EQ(grants, 3);
  EXPECT_TRUE(lm2.Holds(2, 1, X));
  EXPECT_TRUE(lm2.Holds(4, 3, X));
}

TEST(LockManagerTest, ReleaseAllCancelsPendingWait) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kGranted);
  bool granted = false;
  EXPECT_EQ(lm.Acquire(2, 100, X, [&] { granted = true; }),
            AcquireOutcome::kQueued);
  lm.ReleaseAll(2);  // txn 2 gives up
  EXPECT_EQ(lm.WaiterCount(100), 0u);
  lm.Release(1, 100);
  EXPECT_FALSE(granted);
}

TEST(LockManagerTest, CancelWaitUnblocksFollowers) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, S, [] {}), AcquireOutcome::kGranted);
  bool x_granted = false, s_granted = false;
  EXPECT_EQ(lm.Acquire(2, 100, X, [&] { x_granted = true; }),
            AcquireOutcome::kQueued);
  EXPECT_EQ(lm.Acquire(3, 100, S, [&] { s_granted = true; }),
            AcquireOutcome::kQueued);
  // The X waiter times out; the S waiter behind it is now compatible.
  EXPECT_TRUE(lm.CancelWait(2));
  EXPECT_FALSE(x_granted);
  EXPECT_TRUE(s_granted);
}

TEST(LockManagerTest, CancelWaitWhenNotWaitingFails) {
  LockManager lm;
  EXPECT_FALSE(lm.CancelWait(42));
  ASSERT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kGranted);
  EXPECT_FALSE(lm.CancelWait(1));  // holding, not waiting
}

TEST(LockManagerTest, HoldsModeSemantics) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, S, [] {}), AcquireOutcome::kGranted);
  EXPECT_TRUE(lm.Holds(1, 100, S));
  EXPECT_FALSE(lm.Holds(1, 100, X));
  EXPECT_FALSE(lm.Holds(2, 100, S));
  EXPECT_FALSE(lm.Holds(1, 999, S));
}

TEST(LockManagerTest, StatsCount) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kGranted);
  ASSERT_EQ(lm.Acquire(2, 100, X, [] {}), AcquireOutcome::kQueued);
  const LockStats& s = lm.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.immediate_grants, 1u);
  EXPECT_EQ(s.waits, 1u);
  lm.ResetStats();
  EXPECT_EQ(lm.stats().acquires, 0u);
}

TEST(LockManagerTest, TableCleanedUpAfterRelease) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 100, X, [] {}), AcquireOutcome::kGranted);
  lm.Release(1, 100);
  EXPECT_EQ(lm.LockedKeyCount(), 0u);
  EXPECT_EQ(lm.WaiterCount(100), 0u);
}

// Property: a randomized single-waiter workload never loses a grant and
// never leaves residue. Each txn acquires one key, maybe waits, then
// releases everything. Seeded sweep.
class LockManagerRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LockManagerRandomized, ConservationOfGrants) {
  soap::Rng rng(GetParam());
  LockManager lm;
  struct Waiting {
    TxnId txn;
    storage::TupleKey key;
  };
  std::vector<TxnId> holders;
  int outstanding_waits = 0;
  int grants_via_callback = 0;
  TxnId next = 1;
  for (int step = 0; step < 4000; ++step) {
    const bool acquire = holders.size() < 30 && rng.NextBernoulli(0.6);
    if (acquire) {
      const TxnId id = next++;
      const storage::TupleKey key = rng.NextUint64(8);
      const LockMode mode = rng.NextBernoulli(0.5) ? S : X;
      auto outcome =
          lm.Acquire(id, key, mode, [&] { ++grants_via_callback; --outstanding_waits; });
      if (outcome == AcquireOutcome::kGranted) {
        holders.push_back(id);
      } else if (outcome == AcquireOutcome::kQueued) {
        ++outstanding_waits;
        holders.push_back(id);  // will hold once granted; release later
      }
      // Deadlocks impossible: each txn touches one key.
      ASSERT_NE(outcome, AcquireOutcome::kDeadlock);
    } else if (!holders.empty()) {
      const size_t idx = rng.NextUint64(holders.size());
      lm.ReleaseAll(holders[idx]);
      holders.erase(holders.begin() + static_cast<ptrdiff_t>(idx));
    }
  }
  for (TxnId id : holders) lm.ReleaseAll(id);
  EXPECT_EQ(lm.LockedKeyCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockManagerRandomized,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace soap::txn
