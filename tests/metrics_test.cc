#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace soap::obs {
namespace {

TEST(MetricsRegistryTest, RegistrationReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("soap_events_total");
  Counter* c2 = registry.GetCounter("soap_events_total");
  EXPECT_EQ(c1, c2);

  // Distinct labels are distinct instances of the same family.
  Counter* labelled = registry.GetCounter("soap_events_total", "node=\"1\"");
  EXPECT_NE(c1, labelled);

  // Registering more metrics must not move existing ones (components
  // cache raw pointers).
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("soap_filler_" + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("soap_events_total"), c1);
}

TEST(MetricsRegistryTest, CounterGaugeHistogramValues) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("soap_c_total");
  c->Increment();
  c->Increment(9);
  EXPECT_EQ(c->value(), 10u);

  Gauge* g = registry.GetGauge("soap_g");
  g->Set(2.5);
  g->Add(-1.0);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);

  LatencyHistogram* h = registry.GetHistogram("soap_h_seconds");
  h->RecordMicros(1'000'000);  // 1 s
  h->RecordMicros(3'000'000);  // 3 s
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->sum_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(h->MeanSeconds(), 2.0);
}

TEST(MetricsRegistryTest, FindDoesNotRegister) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("soap_missing_total"), nullptr);
  EXPECT_EQ(registry.FindGauge("soap_missing"), nullptr);
  EXPECT_EQ(registry.FindHistogram("soap_missing_seconds"), nullptr);
  EXPECT_EQ(registry.size(), 0u);

  Counter* c = registry.GetCounter("soap_present_total");
  EXPECT_EQ(registry.FindCounter("soap_present_total"), c);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, ResetValuesKeepsRegistrations) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("soap_c_total");
  Gauge* g = registry.GetGauge("soap_g");
  LatencyHistogram* h = registry.GetHistogram("soap_h_seconds");
  c->Increment(5);
  g->Set(7.0);
  h->RecordMicros(123);

  registry.ResetValues();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  // Pointers stay valid and registered.
  EXPECT_EQ(registry.GetCounter("soap_c_total"), c);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistryTest, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("soap_lock_waits_total")->Increment(3);
  registry.GetGauge("soap_queue_depth", "priority=\"high\"")->Set(4.0);
  registry.GetGauge("soap_queue_depth", "priority=\"low\"")->Set(1.0);
  LatencyHistogram* h = registry.GetHistogram("soap_lock_wait_seconds");
  h->RecordMicros(100);
  h->RecordMicros(100'000);

  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE soap_lock_waits_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("soap_lock_waits_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE soap_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("soap_queue_depth{priority=\"high\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE soap_lock_wait_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("soap_lock_wait_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("soap_lock_wait_seconds_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("soap_lock_wait_seconds_sum "), std::string::npos);

  // One # TYPE line per family even with several labelled instances.
  size_t first = text.find("# TYPE soap_queue_depth gauge");
  EXPECT_EQ(text.find("# TYPE soap_queue_depth gauge", first + 1),
            std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusBucketsAreCumulative) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.GetHistogram("soap_h_seconds");
  h->RecordMicros(1);
  h->RecordMicros(1);
  h->RecordMicros(1 << 20);

  const std::string text = registry.ToPrometheusText();
  // The +Inf bucket always carries the full count.
  EXPECT_NE(text.find("soap_h_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  // The low bucket carries only its own two samples.
  EXPECT_NE(text.find("} 2\n"), std::string::npos);
}

TEST(MetricsRegistryTest, LabelValuesAreEscapedForExposition) {
  // Regression: label values containing quotes, backslashes or newlines
  // must not corrupt the Prometheus text format.
  EXPECT_EQ(MetricsRegistry::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(MetricsRegistry::EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(MetricsRegistry::EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(MetricsRegistry::EscapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(MetricsRegistry::Label("target", "pri\"mary"),
            "target=\"pri\\\"mary\"");

  MetricsRegistry registry;
  registry
      .GetCounter("soap_evil_total",
                  MetricsRegistry::Label("path", "C:\\x\n\"quoted\""))
      ->Increment();
  // Hand-built (historically unescaped) labels are sanitised at export.
  registry
      .GetCounter("soap_legacy_total", "node=\"a\nb\"")
      ->Increment();
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(
      text.find(
          "soap_evil_total{path=\"C:\\\\x\\n\\\"quoted\\\"\"} 1\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("soap_legacy_total{node=\"a\\nb\"} 1\n"),
            std::string::npos)
      << text;
  // No raw newline may survive inside any exposition line's label set.
  for (size_t at = text.find('{'); at != std::string::npos;
       at = text.find('{', at + 1)) {
    const size_t close = text.find('}', at);
    ASSERT_NE(close, std::string::npos);
    EXPECT_EQ(text.substr(at, close - at).find('\n'), std::string::npos);
  }
}

TEST(MetricsRegistryTest, JsonLineShapeAndContent) {
  MetricsRegistry registry;
  registry.GetCounter("soap_c_total")->Increment(2);
  registry.GetGauge("soap_pid_p_term")->Set(-0.25);
  registry.GetHistogram("soap_h_seconds")->RecordMicros(2'000'000);

  const std::string line = registry.ToJsonLine(/*now=*/1'234'567,
                                               /*interval=*/7);
  EXPECT_EQ(line.find("{\"t_us\":1234567,\"interval\":7,"), 0u);
  EXPECT_NE(line.find("\"counters\":{\"soap_c_total\":2}"),
            std::string::npos);
  EXPECT_NE(line.find("\"soap_pid_p_term\":-0.25"), std::string::npos);
  EXPECT_NE(line.find("\"soap_h_seconds\":{\"count\":1,"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single line

  // Balanced braces => structurally sound JSON for this ASCII subset.
  int depth = 0;
  for (char c : line) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistryTest, WriteFileRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("soap_c_total")->Increment();
  const std::string path =
      testing::TempDir() + "/soap_metrics_test_out.prom";
  ASSERT_TRUE(registry.WriteFile(path, registry.ToPrometheusText()).ok());

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), registry.ToPrometheusText());
  std::remove(path.c_str());
}

TEST(MetricsRegistryTest, WriteFileFailsOnBadPath) {
  MetricsRegistry registry;
  EXPECT_FALSE(
      registry.WriteFile("/nonexistent-dir/x/y.prom", "data").ok());
}

}  // namespace
}  // namespace soap::obs
