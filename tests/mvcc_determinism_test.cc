// Concurrency-control determinism contract: --cc=2pl reproduces the seed
// goldens bit for bit (the MVCC subsystem is invisible unless selected),
// and --cc=mvcc is itself deterministic — identical results per seed, at
// any worker thread count.

#include <gtest/gtest.h>

#include <vector>

#include "src/engine/experiment.h"
#include "src/engine/parallel_runner.h"

namespace soap::engine {
namespace {

// Same pinned config as parallel_runner_test's golden-count test.
ExperimentConfig PinnedConfig(uint64_t seed) {
  ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0);
  config.workload_options.spec.num_templates = 200;
  config.workload_options.spec.num_keys = 5'000;
  config.workload_options.utilization = workload::kHighLoadUtilization;
  config.deployment.strategy = SchedulingStrategy::kHybrid;
  config.warmup_intervals = 2;
  config.measured_intervals = 6;
  config.seed = seed;
  return config;
}

TEST(MvccDeterminismTest, Default2plReproducesTheSeedGoldens) {
  // cc defaults to k2PL; with the MVCC subsystem compiled in but not
  // selected, every golden count must be untouched.
  ExperimentConfig config = PinnedConfig(42);
  ASSERT_EQ(config.cluster.cc, mvcc::ConcurrencyControl::k2PL);
  ExperimentResult r = Experiment(config).Run();
  EXPECT_EQ(r.events_executed, 602852u);
  EXPECT_EQ(r.end_time, 160'000'000);
  EXPECT_EQ(r.counters.committed_normal, 64'910u);
  EXPECT_FALSE(r.mvcc_enabled);
  EXPECT_EQ(r.counters.aborts_write_conflict, 0u);
  EXPECT_EQ(r.mvcc_versions_live, 0u);
}

TEST(MvccDeterminismTest, MvccIsReproduciblePerSeedAcrossThreadCounts) {
  // Three seeds, each run serially as reference, then fanned over 1, 2
  // and 8 workers: same events, commits, conflicts and version tallies.
  auto cells = [] {
    std::vector<ExperimentCell> out;
    for (uint64_t seed : {42u, 43u, 44u}) {
      ExperimentConfig config = PinnedConfig(seed);
      config.cluster.isolation = cluster::IsolationLevel::kSerializable;
      config.cluster.cc = mvcc::ConcurrencyControl::kMvcc;
      out.push_back(ExperimentCell{std::move(config)});
    }
    return out;
  };

  struct Golden {
    uint64_t events, committed, conflicts, live, pruned;
  };
  std::vector<Golden> reference;
  for (ExperimentCell& cell : cells()) {
    ExperimentResult r = Experiment(std::move(cell.config)).Run();
    EXPECT_TRUE(r.mvcc_enabled);
    EXPECT_GT(r.counters.committed_normal, 0u);
    reference.push_back({r.events_executed, r.counters.committed_normal,
                         r.counters.aborts_write_conflict,
                         r.mvcc_versions_live, r.mvcc_gc_pruned});
  }

  for (uint32_t threads : {1u, 2u, 8u}) {
    ParallelRunner runner(threads);
    std::vector<CellOutcome> outcomes = runner.Run(cells());
    ASSERT_EQ(outcomes.size(), reference.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const ExperimentResult& r = outcomes[i].result;
      EXPECT_EQ(r.events_executed, reference[i].events)
          << "threads=" << threads << " cell=" << i;
      EXPECT_EQ(r.counters.committed_normal, reference[i].committed);
      EXPECT_EQ(r.counters.aborts_write_conflict, reference[i].conflicts);
      EXPECT_EQ(r.mvcc_versions_live, reference[i].live);
      EXPECT_EQ(r.mvcc_gc_pruned, reference[i].pruned);
    }
  }
}

}  // namespace
}  // namespace soap::engine
