// VersionStore / SnapshotManager contract: strict snapshot visibility,
// first-updater-wins probes, the GC bound (chains stay bounded under a
// hot writer even while an idle snapshot pins history), and idempotent
// chain rebuild from WAL records carrying commit timestamps.

#include "src/mvcc/version_store.h"

#include <gtest/gtest.h>

#include "src/mvcc/snapshot_manager.h"
#include "src/storage/wal.h"

namespace soap::mvcc {
namespace {

storage::Tuple MakeTuple(storage::TupleKey key, int64_t content) {
  storage::Tuple t;
  t.key = key;
  t.content = content;
  return t;
}

TEST(VersionStoreTest, StrictVisibilityNewestBeforeTimestamp) {
  VersionStore store(nullptr);
  store.Install(7, /*writer=*/101, /*value=*/11, /*commit_ts=*/10);
  store.Install(7, /*writer=*/102, /*value=*/22, /*commit_ts=*/20);
  store.Install(7, /*writer=*/103, /*value=*/33, /*commit_ts=*/30);

  // Before any commit: the synthesized base.
  EXPECT_EQ(store.ReadAsOf(7, 5).writer, 0u);
  EXPECT_EQ(store.ReadAsOf(7, 5).value, 7);
  // Strictly-before semantics: a snapshot at exactly the commit timestamp
  // does not see that version.
  EXPECT_EQ(store.ReadAsOf(7, 10).writer, 0u);
  EXPECT_EQ(store.ReadAsOf(7, 11).writer, 101u);
  EXPECT_EQ(store.ReadAsOf(7, 30).writer, 102u);
  EXPECT_EQ(store.ReadAsOf(7, 31).writer, 103u);
  EXPECT_EQ(store.ReadAsOf(7, 31).value, 33);
}

TEST(VersionStoreTest, UnwrittenKeyReadsAsItsOwnBaseVersion) {
  // Composes with lazy virtual-base tables: a key nobody wrote has no
  // chain entry at all, and reads as {writer 0, value == key} — the same
  // row Table::SynthesizeRow fabricates.
  VersionStore store(nullptr);
  const VersionRead r = store.ReadAsOf(123456, 1'000'000);
  EXPECT_EQ(r.writer, 0u);
  EXPECT_EQ(r.value, 123456);
  EXPECT_EQ(store.chains(), 0u);
}

TEST(VersionStoreTest, CommittedSinceProbesTheChainTail) {
  VersionStore store(nullptr);
  EXPECT_FALSE(store.CommittedSince(7, 0));  // no chain: nothing conflicts
  store.Install(7, 101, 11, /*commit_ts=*/10);
  EXPECT_TRUE(store.CommittedSince(7, 5));    // version at 10 >= begin 5
  EXPECT_TRUE(store.CommittedSince(7, 10));   // inclusive at the boundary
  EXPECT_FALSE(store.CommittedSince(7, 11));  // began after the tail
}

TEST(VersionStoreTest, GcBoundedUnderHotWriterWithIdleSnapshot) {
  // The adversarial GC case: one idle snapshot pins old history while a
  // writer keeps committing. A watermark GC would leave the chain
  // unbounded; per-snapshot retention keeps it at threshold size.
  SnapshotManager snapshots;
  VersionStore store(&snapshots);
  snapshots.Begin(/*txn_id=*/1, /*begin_ts=*/55);  // idle long-running reader

  for (int i = 1; i <= 10'000; ++i) {
    store.Install(7, /*writer=*/100 + i, /*value=*/i, /*commit_ts=*/i * 10);
  }
  // Bounded: the version visible at ts=55 (commit_ts 50), the tail, and at
  // most a threshold's worth of not-yet-pruned recents.
  EXPECT_LE(store.ChainLength(7), 9u);
  EXPECT_LE(store.ApproxBytes(), 9 * sizeof(Version));
  EXPECT_GT(store.pruned_total(), 9'000u);
  // The pinned version stayed available the whole time.
  EXPECT_EQ(store.ReadAsOf(7, 55).writer, 105u);
  EXPECT_EQ(store.ReadAsOf(7, 55).value, 5);
  // Tail intact.
  EXPECT_EQ(store.ReadAsOf(7, 1'000'000'000).writer, 10'100u);

  // Snapshot ends: the next prune drops the pinned version too.
  snapshots.End(1);
  store.PruneChain(7);
  EXPECT_EQ(store.ChainLength(7), 1u);
}

TEST(VersionStoreTest, PruneKeepsNewestVisiblePerActiveSnapshot) {
  SnapshotManager snapshots;
  VersionStore store(&snapshots);
  snapshots.Begin(1, 15);  // sees commit_ts 10
  snapshots.Begin(2, 35);  // sees commit_ts 30
  snapshots.Begin(3, 5);   // predates the chain: reads the base
  for (int i = 1; i <= 9; ++i) {
    store.Install(7, 100 + i, i, i * 10);  // 10..90 triggers one prune
  }
  // Kept: version@10 (snapshot 1), version@30 (snapshot 2), the tail, and
  // whatever installed after the prune ran.
  EXPECT_EQ(store.ReadAsOf(7, 15).writer, 101u);
  EXPECT_EQ(store.ReadAsOf(7, 35).writer, 103u);
  EXPECT_EQ(store.ReadAsOf(7, 5).writer, 0u);
  EXPECT_LT(store.ChainLength(7), 9u);
  EXPECT_GT(store.pruned_total(), 0u);
}

TEST(VersionStoreTest, StaleObservationAlwaysDiffersFromCorrectRead) {
  VersionStore store(nullptr);
  uint64_t writer = 0;
  // No chain: the break must not be consumed (a misreport would be
  // indistinguishable from a correct base read).
  EXPECT_FALSE(store.StaleObservation(7, 100, &writer));

  store.Install(7, 101, 11, 10);
  store.Install(7, 102, 22, 20);
  // Correct read at ts=5 is the base (0): reports a committed writer.
  ASSERT_TRUE(store.StaleObservation(7, 5, &writer));
  EXPECT_NE(writer, store.ReadAsOf(7, 5).writer);
  // Correct read is the oldest version: reports the base.
  ASSERT_TRUE(store.StaleObservation(7, 15, &writer));
  EXPECT_EQ(writer, 0u);
  EXPECT_NE(writer, store.ReadAsOf(7, 15).writer);
  // Correct read is a middle/tail version: reports the next-older one.
  ASSERT_TRUE(store.StaleObservation(7, 25, &writer));
  EXPECT_EQ(writer, 101u);
  EXPECT_NE(writer, store.ReadAsOf(7, 25).writer);
}

TEST(VersionStoreTest, RebuildFromWalIsIdempotentAndSorted) {
  // A migrated key's writes land in two partitions' logs; replaying both
  // (twice — crash recovery replays checkpoint + log) must yield one
  // timestamp-sorted chain with no duplicates.
  storage::Wal log_a;
  storage::Wal log_b;
  log_a.AppendUpdate(201, MakeTuple(7, 11), /*commit_ts=*/10);
  log_a.AppendUpdate(203, MakeTuple(7, 33), /*commit_ts=*/30);
  log_b.AppendUpdate(202, MakeTuple(7, 22), /*commit_ts=*/20);
  log_b.AppendUpdate(204, MakeTuple(9, 99), /*commit_ts=*/25);
  log_b.AppendInsert(205, MakeTuple(9, 1));  // copy apply: not a version

  VersionStore store(nullptr);
  store.RebuildFromWal(log_a);
  store.RebuildFromWal(log_b);
  store.RebuildFromWal(log_a);  // replayed again: no duplicates
  store.RebuildFromWal(log_b);

  EXPECT_EQ(store.ChainLength(7), 3u);
  EXPECT_EQ(store.ChainLength(9), 1u);
  EXPECT_EQ(store.versions_live(), 4u);
  // Sorted by commit timestamp despite interleaved logs.
  EXPECT_EQ(store.ReadAsOf(7, 15).writer, 201u);
  EXPECT_EQ(store.ReadAsOf(7, 25).writer, 202u);
  EXPECT_EQ(store.ReadAsOf(7, 35).writer, 203u);
  EXPECT_EQ(store.ReadAsOf(7, 35).value, 33);
}

TEST(SnapshotManagerTest, LifecycleAndOldestActive) {
  SnapshotManager snapshots;
  EXPECT_EQ(snapshots.OldestActive(), SnapshotManager::kNone);
  EXPECT_EQ(snapshots.active_count(), 0u);

  snapshots.Begin(1, 100);
  snapshots.Begin(2, 50);
  snapshots.Begin(3, 50);
  EXPECT_EQ(snapshots.active_count(), 3u);
  EXPECT_EQ(snapshots.OldestActive(), 50);

  snapshots.End(2);
  EXPECT_EQ(snapshots.OldestActive(), 50);  // txn 3 still holds 50
  snapshots.End(3);
  EXPECT_EQ(snapshots.OldestActive(), 100);
  snapshots.End(3);  // idempotent
  snapshots.End(1);
  EXPECT_EQ(snapshots.OldestActive(), SnapshotManager::kNone);
}

TEST(SnapshotManagerTest, RetryReRegistersAtTheNewTimestamp) {
  // A resubmitted attempt begins a fresh snapshot; the old registration
  // must not linger and pin GC.
  SnapshotManager snapshots;
  snapshots.Begin(1, 100);
  snapshots.Begin(1, 100);  // duplicate Begin: no double-count
  EXPECT_EQ(snapshots.active_count(), 1u);
  snapshots.Begin(1, 250);  // retry at a later virtual time
  EXPECT_EQ(snapshots.active_count(), 1u);
  EXPECT_EQ(snapshots.OldestActive(), 250);
  snapshots.End(1);
  EXPECT_EQ(snapshots.active_count(), 0u);
}

}  // namespace
}  // namespace soap::mvcc
