// MVCC transaction-manager contract (--cc=mvcc): reads never touch the
// lock manager, snapshot observations are consistent with the reader's
// begin timestamp, write-write conflicts abort under first-updater-wins,
// the stale_snapshot break is provably detected by the checker, and the
// engine-level zero-lock / SI-clean properties hold end to end.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/check/checker.h"
#include "src/check/history_recorder.h"
#include "src/cluster/cluster.h"
#include "src/cluster/transaction_manager.h"
#include "src/engine/experiment.h"
#include "src/mvcc/version_store.h"
#include "src/obs/metrics.h"

namespace soap::cluster {
namespace {

using txn::AbortReason;
using txn::OpKind;
using txn::Operation;
using txn::Transaction;

class MvccTmTest : public ::testing::Test {
 protected:
  MvccTmTest() : cluster_(&sim_, MakeConfig()), tm_(&cluster_) {
    for (storage::TupleKey k = 0; k < 30; ++k) {
      storage::Tuple t;
      t.key = k;
      t.content = static_cast<int64_t>(k) * 10;
      EXPECT_TRUE(cluster_.LoadTuple(t, k % 3).ok());
    }
    tm_.set_completion_callback(
        [this](const Transaction& t) { completed_.push_back(t); });
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig c;
    c.num_nodes = 3;
    c.workers_per_node = 2;
    c.num_keys = 30;
    c.network.jitter = 0;
    c.isolation = IsolationLevel::kSerializable;
    c.cc = mvcc::ConcurrencyControl::kMvcc;
    return c;
  }

  std::unique_ptr<Transaction> MakeTxn(std::vector<Operation> ops) {
    auto t = std::make_unique<Transaction>();
    t->ops = std::move(ops);
    return t;
  }

  static Operation Read(storage::TupleKey key) {
    Operation op;
    op.kind = OpKind::kRead;
    op.key = key;
    return op;
  }
  static Operation Write(storage::TupleKey key, int64_t value) {
    Operation op;
    op.kind = OpKind::kWrite;
    op.key = key;
    op.write_value = value;
    return op;
  }

  sim::Simulator sim_;
  Cluster cluster_;
  TransactionManager tm_;
  std::vector<Transaction> completed_;
};

TEST_F(MvccTmTest, SerializableReadsAcquireZeroLocks) {
  // The tentpole property: under 2PL these same serializable reads take
  // shared locks; under MVCC the lock manager never hears about them.
  tm_.Submit(MakeTxn({Read(0), Read(3), Read(6)}));    // collocated
  tm_.Submit(MakeTxn({Read(1), Read(2), Read(9)}));    // distributed
  sim_.Run();
  ASSERT_EQ(completed_.size(), 2u);
  EXPECT_TRUE(completed_[0].committed());
  EXPECT_TRUE(completed_[1].committed());
  EXPECT_EQ(cluster_.lock_manager().stats().acquires, 0u);
}

TEST_F(MvccTmTest, WritersStillLockAndInstallVersions) {
  tm_.Submit(MakeTxn({Read(0), Write(3, 99)}));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_TRUE(completed_[0].committed());
  // The write took its commit-time exclusive lock...
  EXPECT_GT(cluster_.lock_manager().stats().acquires, 0u);
  // ...applied to storage...
  EXPECT_EQ(cluster_.storage(0).Read(3)->content, 99);
  // ...and installed a version stamped with the commit time.
  EXPECT_EQ(cluster_.versions().ChainLength(3), 1u);
  const mvcc::VersionRead after =
      cluster_.versions().ReadAsOf(3, sim_.Now() + 1);
  EXPECT_EQ(after.writer, completed_[0].id);
  EXPECT_EQ(after.value, 99);
  // A snapshot from before the commit still reads the base.
  EXPECT_EQ(cluster_.versions().ReadAsOf(3, 0).writer, 0u);
}

TEST_F(MvccTmTest, FirstUpdaterWinsAbortsTheSecondWriter) {
  // Both transactions snapshot at t=0 and write key 3; whichever commits
  // first installs a version at-or-after the other's begin timestamp, so
  // the second must abort with kWriteConflict — not wait, as 2PL would.
  tm_.Submit(MakeTxn({Write(3, 111)}));
  tm_.Submit(MakeTxn({Write(3, 222)}));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 2u);
  int committed = 0;
  int conflicted = 0;
  for (const Transaction& t : completed_) {
    if (t.committed()) committed++;
    if (t.abort_reason == AbortReason::kWriteConflict) conflicted++;
  }
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(conflicted, 1);
  EXPECT_EQ(tm_.counters().aborts_write_conflict, 1u);
  EXPECT_EQ(cluster_.versions().ChainLength(3), 1u);
}

TEST_F(MvccTmTest, NonOverlappingWritersBothCommit) {
  tm_.Submit(MakeTxn({Write(3, 111)}));
  tm_.Submit(MakeTxn({Write(4, 222)}));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 2u);
  EXPECT_TRUE(completed_[0].committed());
  EXPECT_TRUE(completed_[1].committed());
  EXPECT_EQ(tm_.counters().aborts_write_conflict, 0u);
}

TEST_F(MvccTmTest, SequentialWriterThenReaderYieldsWrEdgeAndCleanSi) {
  // A real reads-from dependency: the writer commits, then a reader's
  // snapshot (begun after the commit) observes the writer's version. The
  // SI checker must verify the observation and derive the wr edge.
  check::HistoryRecorder recorder;
  recorder.set_clock([this]() { return sim_.Now(); });
  for (uint32_t p = 0; p < 3; ++p) {
    cluster_.storage(p).set_observer(&recorder);
  }
  tm_.set_history(&recorder);

  tm_.Submit(MakeTxn({Write(3, 99)}));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 1u);
  ASSERT_TRUE(completed_[0].committed());
  const uint64_t writer_id = completed_[0].id;

  // Begin the reader strictly after the writer's commit timestamp: a
  // snapshot at exactly the commit instant would (correctly, strict
  // visibility) still read the base.
  sim_.At(sim_.Now() + Millis(1),
          [this] { tm_.Submit(MakeTxn({Read(3), Read(6)})); });
  sim_.Run();
  ASSERT_EQ(completed_.size(), 2u);
  ASSERT_TRUE(completed_[1].committed());

  ASSERT_EQ(recorder.snapshot_reads().size(), 2u);
  EXPECT_EQ(recorder.snapshot_reads()[0].observed_writer, writer_id);
  EXPECT_EQ(recorder.snapshot_reads()[1].observed_writer, 0u);

  const check::CheckReport report =
      check::CheckHistory(recorder, /*serializable=*/true, /*mvcc=*/true);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.mvcc_checked);
  EXPECT_EQ(report.snapshot_reads_checked, 2u);
  EXPECT_EQ(report.wr_edges, 1u);
}

TEST_F(MvccTmTest, StaleSnapshotBreakIsDetectedByTheChecker) {
  check::HistoryRecorder recorder;
  recorder.set_clock([this]() { return sim_.Now(); });
  for (uint32_t p = 0; p < 3; ++p) {
    cluster_.storage(p).set_observer(&recorder);
  }
  tm_.set_history(&recorder);
  tm_.set_check_break(check::BreakMode::kStaleSnapshot);

  // A read on a chainless key must NOT consume the break: a misreport
  // there would be indistinguishable from a correct base read.
  tm_.Submit(MakeTxn({Read(6)}));
  sim_.Run();
  EXPECT_EQ(tm_.check_breaks_fired(), 0u);

  // Build committed history on key 3, then read it: the break fires and
  // misreports the observation.
  tm_.Submit(MakeTxn({Write(3, 99)}));
  sim_.Run();
  tm_.Submit(MakeTxn({Read(3)}));
  sim_.Run();
  EXPECT_EQ(tm_.check_breaks_fired(), 1u);

  // The corrupted observation must be the only thing the checker flags
  // (SequentialWriterThenReaderYieldsWrEdgeAndCleanSi shows the same
  // traffic is clean without the break — the detection is not vacuous).
  const check::CheckReport report =
      check::CheckHistory(recorder, /*serializable=*/true, /*mvcc=*/true);
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.violations.size(), 1u) << report.ToString();
  EXPECT_EQ(report.violations.front().check, "stale_snapshot_read")
      << report.ToString();
}

TEST_F(MvccTmTest, SnapshotsAreReleasedOnCompletion) {
  tm_.Submit(MakeTxn({Read(0), Write(3, 1)}));
  tm_.Submit(MakeTxn({Write(3, 2)}));  // one of the two will conflict-abort
  tm_.Submit(MakeTxn({Read(6)}));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 3u);
  // Commit, abort and read-only paths all end their snapshots, so GC is
  // never pinned by finished transactions.
  EXPECT_EQ(cluster_.snapshots().active_count(), 0u);
  EXPECT_EQ(cluster_.snapshots().OldestActive(),
            mvcc::SnapshotManager::kNone);
}

TEST_F(MvccTmTest, WalReplayRebuildsEquivalentChains) {
  // Recovery equivalence: WAL records carry commit timestamps, so a store
  // rebuilt from every partition's log answers ReadAsOf exactly like the
  // live one — and replaying again changes nothing (idempotent).
  tm_.Submit(MakeTxn({Write(3, 11)}));           // partition 0
  tm_.Submit(MakeTxn({Write(4, 22), Write(5, 33)}));  // distributed: 1 and 2
  sim_.Run();
  // Strictly later begin: at the exact commit instant first-updater-wins
  // would (correctly) refuse the overwrite of key 3.
  sim_.At(sim_.Now() + Millis(1),
          [this] { tm_.Submit(MakeTxn({Write(3, 44)})); });
  sim_.Run();
  ASSERT_EQ(completed_.size(), 3u);
  for (const Transaction& t : completed_) EXPECT_TRUE(t.committed());

  mvcc::VersionStore rebuilt(nullptr);
  for (uint32_t p = 0; p < 3; ++p) {
    rebuilt.RebuildFromWal(cluster_.storage(p).wal());
  }
  EXPECT_EQ(rebuilt.ChainLength(3), 2u);
  const SimTime now = sim_.Now() + 1;
  for (storage::TupleKey key : {3ULL, 4ULL, 5ULL}) {
    EXPECT_EQ(rebuilt.ReadAsOf(key, now).writer,
              cluster_.versions().ReadAsOf(key, now).writer);
    EXPECT_EQ(rebuilt.ReadAsOf(key, now).value,
              cluster_.versions().ReadAsOf(key, now).value);
  }
  EXPECT_EQ(rebuilt.ReadAsOf(3, now).value, 44);

  const uint64_t live = rebuilt.versions_live();
  for (uint32_t p = 0; p < 3; ++p) {
    rebuilt.RebuildFromWal(cluster_.storage(p).wal());
  }
  EXPECT_EQ(rebuilt.versions_live(), live);
}

// --- Engine-level properties (full experiment stack). ---

engine::ExperimentConfig SmallConfig(uint64_t seed) {
  engine::ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0);
  config.workload_options.spec.num_templates = 80;
  config.workload_options.spec.num_keys = 2'000;
  config.workload_options.utilization = workload::kHighLoadUtilization;
  config.deployment.strategy = SchedulingStrategy::kHybrid;
  config.warmup_intervals = 1;
  config.measured_intervals = 4;
  config.seed = seed;
  config.cluster.isolation = IsolationLevel::kSerializable;
  config.cluster.cc = mvcc::ConcurrencyControl::kMvcc;
  return config;
}

TEST(MvccEngineTest, ReadOnlyWorkloadAcquiresZeroLocksUnderMvcc) {
  // The acceptance assertion: a serializable read-only workload under
  // --cc=mvcc drives the whole stack (routing, 2PC-free commits, metrics)
  // with literally zero lock-manager calls.
  engine::ExperimentConfig config = SmallConfig(11);
  config.workload_options.spec.write_fraction = 0.0;
  // alpha=0: the workload is already collocated, so the optimizer plan is
  // empty and no repartition transactions (which do lock) run either.
  config.workload_options.spec.alpha = 0.0;
  config.obs.collect_metrics = true;
  engine::ExperimentResult r = engine::Experiment(config).Run();
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_GT(r.counters.committed_normal, 0u);
  EXPECT_EQ(r.lock_stats.acquires, 0u);
  EXPECT_TRUE(r.mvcc_enabled);

  // Same workload under 2PL: every serializable read locks.
  config.cluster.cc = mvcc::ConcurrencyControl::k2PL;
  engine::ExperimentResult two_pl = engine::Experiment(config).Run();
  EXPECT_GT(two_pl.lock_stats.acquires, 0u);
  EXPECT_FALSE(two_pl.mvcc_enabled);
}

TEST(MvccEngineTest, CheckedMvccRunIsCleanAndCountsWriteConflicts) {
  engine::ExperimentConfig config = SmallConfig(12);
  config.check.enabled = true;
  engine::ExperimentResult r = engine::Experiment(config).Run();
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_TRUE(r.check_report.ok()) << r.check_report.ToString();
  EXPECT_TRUE(r.check_report.mvcc_checked);
  EXPECT_GT(r.check_report.snapshot_reads_checked, 0u);
  EXPECT_GT(r.counters.committed_normal, 0u);
  // High-contention zipf writes: first-updater-wins visibly fires, and the
  // summary/result plumbing carries it.
  EXPECT_GT(r.counters.aborts_write_conflict, 0u);
  EXPECT_NE(r.Summary().find("write_conflict="), std::string::npos);
  EXPECT_NE(r.Summary().find("mvcc[versions_live="), std::string::npos);
  // GC kept the store bounded: under this write-heavy load most installed
  // versions were pruned, leaving a small live set.
  EXPECT_GT(r.mvcc_gc_pruned, 0u);
  EXPECT_LT(r.mvcc_versions_live, r.mvcc_gc_pruned);
}

TEST(MvccEngineTest, AbortReasonCountersAreLabelled) {
  engine::ExperimentConfig config = SmallConfig(13);
  config.obs.collect_metrics = true;
  engine::ExperimentResult r = engine::Experiment(config).Run();
  ASSERT_NE(r.metrics, nullptr);
  const std::string prom = r.metrics->ToPrometheusText();
  EXPECT_NE(prom.find("soap_txn_aborts_total{reason=\"write_conflict\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("soap_txn_aborts_total{reason=\"lock_timeout\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("soap_mvcc_versions_live"), std::string::npos);
  EXPECT_NE(prom.find("soap_mvcc_gc_pruned_total"), std::string::npos);
}

TEST(MvccEngineTest, StaleSnapshotBreakNeedsMvcc) {
  engine::ExperimentConfig config = SmallConfig(14);
  config.cluster.cc = mvcc::ConcurrencyControl::k2PL;
  config.check.enabled = true;
  config.check.break_mode = "stale_snapshot";
  EXPECT_FALSE(config.Validate().ok());
  config.cluster.cc = mvcc::ConcurrencyControl::kMvcc;
  EXPECT_TRUE(config.Validate().ok());
}

}  // namespace
}  // namespace soap::cluster
