#include "src/sim/network.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace soap::sim {
namespace {

NetworkConfig NoJitter() {
  NetworkConfig c;
  c.base_latency = Millis(1);
  c.per_kb = Micros(1024);  // 1us per byte for easy math
  c.jitter = 0;
  return c;
}

TEST(NetworkTest, IntraNodeIsInstant) {
  Simulator sim;
  Network net(&sim, NoJitter());
  SimTime delivered = -1;
  net.Send(2, 2, 4096, [&] { delivered = sim.Now(); });
  sim.Run();
  EXPECT_EQ(delivered, 0);
}

TEST(NetworkTest, CrossNodeLatency) {
  Simulator sim;
  Network net(&sim, NoJitter());
  SimTime delivered = -1;
  net.Send(0, 1, 1024, [&] { delivered = sim.Now(); });
  sim.Run();
  EXPECT_EQ(delivered, Millis(1) + Micros(1024));
}

TEST(NetworkTest, NominalLatencyScalesWithBytes) {
  Simulator sim;
  Network net(&sim, NoJitter());
  EXPECT_EQ(net.NominalLatency(0, 1, 0), Millis(1));
  EXPECT_LT(net.NominalLatency(0, 1, 1024), net.NominalLatency(0, 1, 4096));
  EXPECT_EQ(net.NominalLatency(3, 3, 1 << 20), 0);
}

TEST(NetworkTest, CountsTraffic) {
  Simulator sim;
  Network net(&sim, NoJitter());
  net.Send(0, 1, 100, [] {});
  net.Send(1, 0, 200, [] {});
  sim.Run();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 300u);
}

TEST(NetworkTest, JitterBoundedAndDeterministic) {
  NetworkConfig c = NoJitter();
  c.jitter = Micros(500);
  SimTime t1, t2;
  {
    Simulator sim;
    Network net(&sim, c, /*seed=*/99);
    SimTime d = 0;
    net.Send(0, 1, 0, [&] { d = sim.Now(); });
    sim.Run();
    EXPECT_GE(d, Millis(1));
    EXPECT_LE(d, Millis(1) + Micros(500));
    t1 = d;
  }
  {
    Simulator sim;
    Network net(&sim, c, /*seed=*/99);
    SimTime d = 0;
    net.Send(0, 1, 0, [&] { d = sim.Now(); });
    sim.Run();
    t2 = d;
  }
  EXPECT_EQ(t1, t2);  // same seed, same jitter
}

TEST(NetworkTest, ConcurrentMessagesIndependent) {
  Simulator sim;
  Network net(&sim, NoJitter());
  int delivered = 0;
  for (int i = 0; i < 10; ++i) net.Send(0, 1, 0, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 10);
}

TEST(NetworkTest, CancelReleasesInflightGauges) {
  Simulator sim;
  Network net(&sim, NoJitter());
  obs::MetricsRegistry metrics;
  net.BindMetrics(&metrics);
  obs::Gauge* inflight = metrics.GetGauge("soap_network_inflight_messages");
  obs::Gauge* inflight_bytes = metrics.GetGauge("soap_network_inflight_bytes");

  const EventId id = net.Send(0, 1, 100, [] { FAIL() << "cancelled"; });
  ASSERT_NE(id, kInvalidEventId);
  EXPECT_EQ(inflight->value(), 1.0);
  EXPECT_EQ(inflight_bytes->value(), 100.0);
  EXPECT_TRUE(net.Cancel(id));
  // A cancelled delivery must not leak its in-flight contribution.
  EXPECT_EQ(inflight->value(), 0.0);
  EXPECT_EQ(inflight_bytes->value(), 0.0);
  EXPECT_FALSE(net.Cancel(id));  // already gone
  sim.Run();
}

TEST(NetworkTest, CancelOfDeliveredEventIsRejected) {
  Simulator sim;
  Network net(&sim, NoJitter());
  obs::MetricsRegistry metrics;
  net.BindMetrics(&metrics);
  const EventId id = net.Send(0, 1, 64, [] {});
  sim.Run();
  EXPECT_FALSE(net.Cancel(id));
  EXPECT_EQ(metrics.GetGauge("soap_network_inflight_messages")->value(), 0.0);
}

namespace {
/// Scripted hook: applies one fixed fate to every message.
class FixedFateHooks : public NetworkFaultHooks {
 public:
  explicit FixedFateHooks(MsgFate fate) : fate_(fate) {}
  MsgFate OnMessage(NodeId, NodeId, MsgClass) override { return fate_; }
  void Park(NodeId to, InlineFn deliver) override {
    parked.emplace_back(to, std::move(deliver));
  }
  std::vector<std::pair<NodeId, InlineFn>> parked;

 private:
  MsgFate fate_;
};
}  // namespace

TEST(NetworkTest, SendWithFailureInvokesOnDropWhenDropped) {
  Simulator sim;
  Network net(&sim, NoJitter());
  MsgFate drop;
  drop.action = MsgFate::Action::kDrop;
  FixedFateHooks hooks(drop);
  net.set_fault_hooks(&hooks);
  int delivered = 0;
  int dropped = 0;
  SimTime dropped_at = -1;
  net.SendWithFailure(0, 1, 1024, [&] { ++delivered; }, [&] {
    ++dropped;
    dropped_at = sim.Now();
  });
  sim.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(dropped, 1);
  // The loss is detected after the nominal transfer delay, not instantly.
  EXPECT_EQ(dropped_at, Millis(1) + Micros(1024));
}

TEST(NetworkTest, ExtraDelayPostponesDelivery) {
  Simulator sim;
  Network net(&sim, NoJitter());
  MsgFate slow;
  slow.extra_delay = Millis(10);
  FixedFateHooks hooks(slow);
  net.set_fault_hooks(&hooks);
  SimTime delivered = -1;
  net.Send(0, 1, 1024, [&] { delivered = sim.Now(); });
  sim.Run();
  EXPECT_EQ(delivered, Millis(11) + Micros(1024));
}

TEST(NetworkTest, DuplicateDeliversTwice) {
  Simulator sim;
  Network net(&sim, NoJitter());
  MsgFate dup;
  dup.duplicate = true;
  FixedFateHooks hooks(dup);
  net.set_fault_hooks(&hooks);
  int delivered = 0;
  net.Send(0, 1, 0, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 2);
}

TEST(NetworkTest, ParkHandsDeliveryToTheHooks) {
  Simulator sim;
  Network net(&sim, NoJitter());
  MsgFate park;
  park.action = MsgFate::Action::kPark;
  FixedFateHooks hooks(park);
  net.set_fault_hooks(&hooks);
  int delivered = 0;
  net.Send(0, 3, 64, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 0);  // held by the injector
  ASSERT_EQ(hooks.parked.size(), 1u);
  EXPECT_EQ(hooks.parked[0].first, 3u);
  hooks.parked[0].second();  // manual redelivery
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkTest, HooksDoNotPerturbDeliveryTiming) {
  // A pass-through hook must leave delivery times identical to no hook:
  // the fault layer's presence alone cannot change a run.
  NetworkConfig c = NoJitter();
  c.jitter = Micros(500);
  SimTime without_hooks, with_hooks;
  {
    Simulator sim;
    Network net(&sim, c, /*seed=*/5);
    SimTime d = 0;
    net.Send(0, 1, 64, [&] { d = sim.Now(); });
    sim.Run();
    without_hooks = d;
  }
  {
    Simulator sim;
    Network net(&sim, c, /*seed=*/5);
    FixedFateHooks hooks(MsgFate{});
    net.set_fault_hooks(&hooks);
    SimTime d = 0;
    net.Send(0, 1, 64, [&] { d = sim.Now(); });
    sim.Run();
    with_hooks = d;
  }
  EXPECT_EQ(without_hooks, with_hooks);
}

}  // namespace
}  // namespace soap::sim
