#include "src/sim/network.h"

#include <gtest/gtest.h>

namespace soap::sim {
namespace {

NetworkConfig NoJitter() {
  NetworkConfig c;
  c.base_latency = Millis(1);
  c.per_kb = Micros(1024);  // 1us per byte for easy math
  c.jitter = 0;
  return c;
}

TEST(NetworkTest, IntraNodeIsInstant) {
  Simulator sim;
  Network net(&sim, NoJitter());
  SimTime delivered = -1;
  net.Send(2, 2, 4096, [&] { delivered = sim.Now(); });
  sim.Run();
  EXPECT_EQ(delivered, 0);
}

TEST(NetworkTest, CrossNodeLatency) {
  Simulator sim;
  Network net(&sim, NoJitter());
  SimTime delivered = -1;
  net.Send(0, 1, 1024, [&] { delivered = sim.Now(); });
  sim.Run();
  EXPECT_EQ(delivered, Millis(1) + Micros(1024));
}

TEST(NetworkTest, NominalLatencyScalesWithBytes) {
  Simulator sim;
  Network net(&sim, NoJitter());
  EXPECT_EQ(net.NominalLatency(0, 1, 0), Millis(1));
  EXPECT_LT(net.NominalLatency(0, 1, 1024), net.NominalLatency(0, 1, 4096));
  EXPECT_EQ(net.NominalLatency(3, 3, 1 << 20), 0);
}

TEST(NetworkTest, CountsTraffic) {
  Simulator sim;
  Network net(&sim, NoJitter());
  net.Send(0, 1, 100, [] {});
  net.Send(1, 0, 200, [] {});
  sim.Run();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 300u);
}

TEST(NetworkTest, JitterBoundedAndDeterministic) {
  NetworkConfig c = NoJitter();
  c.jitter = Micros(500);
  SimTime t1, t2;
  {
    Simulator sim;
    Network net(&sim, c, /*seed=*/99);
    SimTime d = 0;
    net.Send(0, 1, 0, [&] { d = sim.Now(); });
    sim.Run();
    EXPECT_GE(d, Millis(1));
    EXPECT_LE(d, Millis(1) + Micros(500));
    t1 = d;
  }
  {
    Simulator sim;
    Network net(&sim, c, /*seed=*/99);
    SimTime d = 0;
    net.Send(0, 1, 0, [&] { d = sim.Now(); });
    sim.Run();
    t2 = d;
  }
  EXPECT_EQ(t1, t2);  // same seed, same jitter
}

TEST(NetworkTest, ConcurrentMessagesIndependent) {
  Simulator sim;
  Network net(&sim, NoJitter());
  int delivered = 0;
  for (int i = 0; i < 10; ++i) net.Send(0, 1, 0, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 10);
}

}  // namespace
}  // namespace soap::sim
