#include "src/cluster/node.h"

#include <gtest/gtest.h>

#include <vector>

namespace soap::cluster {
namespace {

TEST(NodeTest, SingleJobTakesServiceTime) {
  sim::Simulator sim;
  Node node(&sim, 0, 1);
  SimTime done_at = -1;
  node.RunJob(Millis(5), WorkCategory::kNormal, JobClass::kBulk,
              [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, Millis(5));
  EXPECT_EQ(node.busy_time(WorkCategory::kNormal), Millis(5));
  EXPECT_EQ(node.jobs_run(), 1u);
}

TEST(NodeTest, JobsQueueWhenWorkersBusy) {
  sim::Simulator sim;
  Node node(&sim, 0, 1);
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    node.RunJob(Millis(10), WorkCategory::kNormal, JobClass::kBulk,
                [&] { done.push_back(sim.Now()); });
  }
  EXPECT_EQ(node.queued_jobs(), 2u);
  sim.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{Millis(10), Millis(20), Millis(30)}));
}

TEST(NodeTest, ParallelWorkers) {
  sim::Simulator sim;
  Node node(&sim, 0, 2);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    node.RunJob(Millis(10), WorkCategory::kNormal, JobClass::kBulk,
                [&] { done.push_back(sim.Now()); });
  }
  sim.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{Millis(10), Millis(10), Millis(20),
                                        Millis(20)}));
}

TEST(NodeTest, UrgentJobsCutAheadOfBulk) {
  sim::Simulator sim;
  Node node(&sim, 0, 1);
  std::vector<int> order;
  node.RunJob(Millis(5), WorkCategory::kNormal, JobClass::kBulk,
              [&] { order.push_back(0); });  // running
  node.RunJob(Millis(5), WorkCategory::kNormal, JobClass::kBulk,
              [&] { order.push_back(1); });  // queued bulk
  node.RunJob(Millis(1), WorkCategory::kNormal, JobClass::kUrgent,
              [&] { order.push_back(2); });  // queued urgent
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(NodeTest, UrgentDoesNotPreemptRunningJob) {
  sim::Simulator sim;
  Node node(&sim, 0, 1);
  SimTime urgent_done = -1;
  node.RunJob(Millis(10), WorkCategory::kNormal, JobClass::kBulk, [] {});
  node.RunJob(Millis(1), WorkCategory::kNormal, JobClass::kUrgent,
              [&] { urgent_done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(urgent_done, Millis(11));
}

TEST(NodeTest, BusyTimePerCategory) {
  sim::Simulator sim;
  Node node(&sim, 0, 2);
  node.RunJob(Millis(3), WorkCategory::kNormal, JobClass::kBulk, [] {});
  node.RunJob(Millis(7), WorkCategory::kRepartition, JobClass::kBulk, [] {});
  sim.Run();
  EXPECT_EQ(node.busy_time(WorkCategory::kNormal), Millis(3));
  EXPECT_EQ(node.busy_time(WorkCategory::kRepartition), Millis(7));
  EXPECT_EQ(node.total_busy_time(), Millis(10));
}

TEST(NodeTest, ZeroDurationJobCompletes) {
  sim::Simulator sim;
  Node node(&sim, 0, 1);
  bool done = false;
  node.RunJob(0, WorkCategory::kNormal, JobClass::kBulk, [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(NodeTest, CompletionCanEnqueueMoreWork) {
  sim::Simulator sim;
  Node node(&sim, 0, 1);
  int chain = 0;
  std::function<void()> more = [&] {
    if (++chain < 5) {
      node.RunJob(Millis(1), WorkCategory::kNormal, JobClass::kBulk, more);
    }
  };
  node.RunJob(Millis(1), WorkCategory::kNormal, JobClass::kBulk, more);
  sim.Run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.Now(), Millis(5));
}

}  // namespace
}  // namespace soap::cluster
