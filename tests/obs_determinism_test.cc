// Observability cost/determinism contract: collecting the audit log and
// the timeline must not change the simulation (same events, same
// commits as the golden counts), and the exported JSONL must be
// byte-identical at any worker thread count.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/engine/experiment.h"
#include "src/engine/parallel_runner.h"
#include "src/obs/audit_log.h"
#include "src/obs/timeline.h"

namespace soap::engine {
namespace {

// Same pinned config as parallel_runner_test's golden-count test.
ExperimentConfig PinnedConfig(uint64_t seed) {
  ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0);
  config.workload_options.spec.num_templates = 200;
  config.workload_options.spec.num_keys = 5'000;
  config.workload_options.utilization = workload::kHighLoadUtilization;
  config.deployment.strategy = SchedulingStrategy::kHybrid;
  config.warmup_intervals = 2;
  config.measured_intervals = 6;
  config.seed = seed;
  return config;
}

// A decision-rich variant: planner + replicas, so the audit log contains
// replan/plan_op/deploy records and the timeline sees placement flows.
ExperimentConfig ObservedConfig(uint64_t seed) {
  ExperimentConfig config = PinnedConfig(seed);
  config.planner_options.enabled = true;
  config.replicas.enabled = true;
  config.obs.collect_audit = true;
  config.obs.collect_timeline = true;
  return config;
}

TEST(ObsDeterminismTest, CollectionDoesNotPerturbTheGoldenRun) {
  // The golden counts from parallel_runner_test, reproduced with every
  // observability collector attached: audit, timeline (which implies
  // metrics) and tracing. Observability reads the simulation; it must
  // never steer it.
  ExperimentConfig config = PinnedConfig(42);
  config.obs.collect_audit = true;
  config.obs.collect_timeline = true;
  config.obs.collect_metrics = true;
  ExperimentResult r = Experiment(config).Run();
  EXPECT_EQ(r.events_executed, 602852u);
  EXPECT_EQ(r.end_time, 160'000'000);
  EXPECT_EQ(r.counters.committed_normal, 64'910u);
  ASSERT_NE(r.audit_log, nullptr);
  EXPECT_GT(r.audit_log->size(), 0u);
  ASSERT_NE(r.timeline, nullptr);
  EXPECT_EQ(r.timeline->ticks().size(), 8u);  // one per interval
}

TEST(ObsDeterminismTest, ExportsAreByteIdenticalAcrossThreadCounts) {
  // Three observed cells fanned over 1, 2 and 8 workers: the audit and
  // timeline JSONL must match the serial reference byte for byte (no
  // wall-clock values, no scheduling artifacts).
  auto cells = [] {
    std::vector<ExperimentCell> out;
    for (uint64_t seed : {42u, 43u, 44u}) {
      out.push_back(ExperimentCell{ObservedConfig(seed)});
    }
    return out;
  };

  std::vector<std::string> reference_audit;
  std::vector<std::string> reference_timeline;
  for (ExperimentCell& cell : cells()) {
    ExperimentResult r = Experiment(std::move(cell.config)).Run();
    ASSERT_NE(r.audit_log, nullptr);
    ASSERT_NE(r.timeline, nullptr);
    EXPECT_GT(r.audit_log->size(), 0u);
    reference_audit.push_back(r.audit_log->ToJsonl());
    reference_timeline.push_back(r.timeline->ToJsonl());
  }

  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::vector<CellOutcome> outcomes =
        ParallelRunner(threads).Run(cells());
    ASSERT_EQ(outcomes.size(), reference_audit.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      SCOPED_TRACE("cell=" + std::to_string(i));
      const ExperimentResult& r = outcomes[i].result;
      ASSERT_NE(r.audit_log, nullptr);
      ASSERT_NE(r.timeline, nullptr);
      EXPECT_EQ(r.audit_log->ToJsonl(), reference_audit[i]);
      EXPECT_EQ(r.timeline->ToJsonl(), reference_timeline[i]);
    }
  }
}

TEST(ObsDeterminismTest, AuditOnAndOffEmitIdenticalPlans) {
  // The plan builder logs every candidate when auditing; the emitted
  // moves (and therefore the whole simulation) must match the unaudited
  // run exactly.
  ExperimentConfig off = PinnedConfig(42);
  off.planner_options.enabled = true;
  off.replicas.enabled = true;
  ExperimentConfig on = off;
  on.obs.collect_audit = true;

  ExperimentResult r_off = Experiment(off).Run();
  ExperimentResult r_on = Experiment(on).Run();
  EXPECT_EQ(r_off.events_executed, r_on.events_executed);
  EXPECT_EQ(r_off.end_time, r_on.end_time);
  EXPECT_EQ(r_off.counters.committed_normal,
            r_on.counters.committed_normal);
  EXPECT_EQ(r_off.plan_ops_total, r_on.plan_ops_total);
  EXPECT_EQ(r_off.plan_generations, r_on.plan_generations);
  EXPECT_EQ(r_off.throughput.values(), r_on.throughput.values());
  EXPECT_EQ(r_off.latency_ms.values(), r_on.latency_ms.values());
  EXPECT_EQ(r_on.audit_log->dropped(), 0u);
}

}  // namespace
}  // namespace soap::engine
