#include "src/repartition/optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/workload/generator.h"

namespace soap::repartition {
namespace {

struct Fixture {
  workload::WorkloadSpec spec;
  workload::TemplateCatalog catalog;
  CostModel cost_model;
  router::RoutingTable routing;
  Optimizer optimizer;

  explicit Fixture(double alpha,
                   workload::PopularityDist dist =
                       workload::PopularityDist::kZipf)
      : spec(MakeSpec(alpha, dist)),
        catalog(spec, 5),
        cost_model(cluster::ExecutionCosts{}, spec.queries_per_txn),
        routing(spec.num_keys),
        optimizer(&catalog, &cost_model, /*total_workers=*/10) {
    for (storage::TupleKey k = 0; k < spec.num_keys; ++k) {
      EXPECT_TRUE(routing.SetPrimary(k, catalog.InitialPartitionOf(k)).ok());
    }
  }

  static workload::WorkloadSpec MakeSpec(double alpha,
                                         workload::PopularityDist dist) {
    workload::WorkloadSpec s;
    s.distribution = dist;
    s.num_templates = 100;
    s.num_keys = 1000;
    s.alpha = alpha;
    s.seed = 9;
    return s;
  }
};

TEST(OptimizerTest, PlanCoversExactlyDistributedTemplates) {
  Fixture f(0.6);
  RepartitionPlan plan = f.optimizer.DerivePlan(f.routing);
  // Each distributed template contributes its remote keys (2 each).
  EXPECT_EQ(plan.size(), f.catalog.distributed_count() * 2);
  std::set<uint32_t> planned_templates;
  for (const RepartitionOp& op : plan.ops) {
    ASSERT_EQ(op.affected_templates.size(), 1u);
    planned_templates.insert(op.affected_templates[0]);
    EXPECT_EQ(op.kind, RepartitionOpType::kObjectsMigration);
  }
  EXPECT_EQ(planned_templates.size(), f.catalog.distributed_count());
  for (uint32_t t : planned_templates) {
    EXPECT_TRUE(f.catalog.at(t).initially_distributed);
  }
}

TEST(OptimizerTest, PlanMovesMinorityToMajority) {
  Fixture f(1.0);
  RepartitionPlan plan = f.optimizer.DerivePlan(f.routing);
  for (const RepartitionOp& op : plan.ops) {
    const workload::TxnTemplate& tmpl =
        f.catalog.at(op.affected_templates[0]);
    EXPECT_EQ(op.target_partition, tmpl.home_partition);
    EXPECT_EQ(op.source_partition, tmpl.remote_partition);
  }
}

TEST(OptimizerTest, OpIdsAreUniqueAndDense) {
  Fixture f(1.0);
  RepartitionPlan plan = f.optimizer.DerivePlan(f.routing);
  std::set<uint64_t> ids;
  for (const RepartitionOp& op : plan.ops) {
    EXPECT_GE(op.id, 1u);
    EXPECT_LE(op.id, plan.size());
    EXPECT_TRUE(ids.insert(op.id).second);
  }
}

TEST(OptimizerTest, EmptyPlanWhenEverythingCollocated) {
  Fixture f(1.0);
  // Apply the plan by hand, then re-derive: nothing left to do.
  RepartitionPlan plan = f.optimizer.DerivePlan(f.routing);
  for (const RepartitionOp& op : plan.ops) {
    ASSERT_TRUE(
        f.routing.Migrate(op.key, op.source_partition, op.target_partition)
            .ok());
  }
  EXPECT_TRUE(f.optimizer.DerivePlan(f.routing).empty());
}

TEST(OptimizerTest, TemplateGainPositiveOnlyWhenDistributed) {
  Fixture f(0.5);
  for (uint32_t t = 0; t < f.catalog.size(); ++t) {
    const Duration gain = f.optimizer.TemplateGain(t, f.routing);
    if (f.catalog.at(t).initially_distributed) {
      EXPECT_GT(gain, 0) << t;
    } else {
      EXPECT_EQ(gain, 0) << t;
    }
  }
}

TEST(OptimizerTest, UtilizationEstimateTracksLoad) {
  Fixture f(1.0, workload::PopularityDist::kUniform);
  workload::WorkloadHistory history(100, 10);
  // 100 txn/s uniform over all templates, all distributed: work rate =
  // 100 * distributed_cost.
  for (int i = 0; i < 2000; ++i) {
    history.Record(static_cast<uint32_t>(i % 100));
  }
  history.CloseInterval(Seconds(20));
  const double estimated = f.optimizer.EstimateUtilization(history,
                                                           f.routing);
  const double expected =
      100.0 * static_cast<double>(f.cost_model.DistributedTxnCost(2)) /
      (10.0 * 1e6);
  EXPECT_NEAR(estimated, expected, expected * 0.01);
}

TEST(OptimizerTest, ShouldRepartitionRespectsThreshold) {
  OptimizerConfig config;
  config.utilization_threshold = 0.5;
  Fixture f(1.0, workload::PopularityDist::kUniform);
  Optimizer strict(&f.catalog, &f.cost_model, 10, config);
  workload::WorkloadHistory quiet(100, 10);
  quiet.CloseInterval(Seconds(20));
  EXPECT_FALSE(strict.ShouldRepartition(quiet, f.routing));

  workload::WorkloadHistory busy(100, 10);
  for (int i = 0; i < 100000; ++i) {
    busy.Record(static_cast<uint32_t>(i % 100));
  }
  busy.CloseInterval(Seconds(20));
  EXPECT_TRUE(strict.ShouldRepartition(busy, f.routing));
}

TEST(OptimizerTest, SharedAllocatorKeepsIdsMonotonicAcrossDerivePlans) {
  // Two generations drawn from one run-wide allocator (the planner's
  // replan loop does exactly this): epochs advance 1, 2 and no op id is
  // ever reused, so the registry's idempotency tracking stays sound.
  Fixture f(1.0);
  OpIdAllocator ids;
  RepartitionPlan first = f.optimizer.DerivePlan(f.routing, &ids);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.epoch, 1u);
  RepartitionPlan second = f.optimizer.DerivePlan(f.routing, &ids);
  EXPECT_EQ(second.epoch, 2u);
  ASSERT_EQ(second.size(), first.size());  // routing unchanged: same moves
  uint64_t max_first = 0;
  std::set<uint64_t> seen;
  for (const RepartitionOp& op : first.ops) {
    EXPECT_TRUE(seen.insert(op.id).second);
    max_first = std::max(max_first, op.id);
  }
  for (const RepartitionOp& op : second.ops) {
    EXPECT_TRUE(seen.insert(op.id).second) << "op id reused: " << op.id;
    EXPECT_GT(op.id, max_first);
  }
}

TEST(OptimizerTest, PlanIgnoresUnroutedKeys) {
  // Keys outside any template are routed; the optimizer only considers
  // template keys, so the plan must never touch a non-template key.
  Fixture f(1.0);
  RepartitionPlan plan = f.optimizer.DerivePlan(f.routing);
  std::set<storage::TupleKey> template_keys;
  for (const auto& tmpl : f.catalog.templates()) {
    template_keys.insert(tmpl.keys.begin(), tmpl.keys.end());
  }
  for (const RepartitionOp& op : plan.ops) {
    EXPECT_TRUE(template_keys.count(op.key)) << op.key;
  }
}

}  // namespace
}  // namespace soap::repartition
