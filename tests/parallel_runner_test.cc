#include "src/engine/parallel_runner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/series.h"
#include "src/engine/experiment.h"

namespace soap::engine {
namespace {

// The pinned determinism config: small enough to run several times in a
// test, big enough to exercise repartitioning, 2PC and the drain/audit
// path. Golden numbers below were produced by the seed implementation and
// must never drift — they are the byte-identity contract in miniature.
ExperimentConfig PinnedConfig(uint64_t seed) {
  ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0);
  config.workload_options.spec.num_templates = 200;
  config.workload_options.spec.num_keys = 5'000;
  config.workload_options.utilization = workload::kHighLoadUtilization;
  config.deployment.strategy = SchedulingStrategy::kHybrid;
  config.warmup_intervals = 2;
  config.measured_intervals = 6;
  config.seed = seed;
  return config;
}

std::vector<ExperimentCell> PinnedCells() {
  std::vector<ExperimentCell> cells;
  for (uint64_t seed : {42u, 43u, 44u}) {
    cells.push_back(ExperimentCell{PinnedConfig(seed)});
  }
  return cells;
}

void ExpectSameResult(const ExperimentResult& a, const ExperimentResult& b) {
  // Exact double equality on purpose: a deterministic engine reproduces
  // bit-identical series, not merely close ones.
  EXPECT_EQ(a.throughput.values(), b.throughput.values());
  EXPECT_EQ(a.latency_ms.values(), b.latency_ms.values());
  EXPECT_EQ(a.latency_p99_ms.values(), b.latency_p99_ms.values());
  EXPECT_EQ(a.rep_rate.values(), b.rep_rate.values());
  EXPECT_EQ(a.failure_rate.values(), b.failure_rate.values());
  EXPECT_EQ(a.queue_length.values(), b.queue_length.values());
  EXPECT_EQ(a.utilization.values(), b.utilization.values());
  EXPECT_EQ(a.rep_work_ratio.values(), b.rep_work_ratio.values());
  EXPECT_EQ(a.counters.committed_normal, b.counters.committed_normal);
  EXPECT_EQ(a.counters.aborted_normal, b.counters.aborted_normal);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.audit.ok(), b.audit.ok());
}

std::string CsvBytes(const ExperimentResult& r, const std::string& path) {
  SeriesBundle bundle("determinism");
  bundle.Insert("throughput", r.throughput);
  bundle.Insert("latency_ms", r.latency_ms);
  bundle.Insert("rep_rate", r.rep_rate);
  bundle.Insert("failure_rate", r.failure_rate);
  EXPECT_TRUE(bundle.WriteCsv(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  std::remove(path.c_str());
  return out.str();
}

// The golden counts for PinnedConfig(42), captured from the seed
// implementation before the fast-path event loop landed. If this fails the
// refactor changed simulation behaviour, not just its speed — every figure
// CSV would differ too.
TEST(ParallelRunnerTest, PinnedConfigMatchesSeedGoldenCounts) {
  ExperimentResult r = Experiment(PinnedConfig(42)).Run();
  EXPECT_EQ(r.events_executed, 602852u);
  EXPECT_EQ(r.end_time, 160'000'000);
  EXPECT_EQ(r.counters.committed_normal, 64'910u);
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
}

TEST(ParallelRunnerTest, ThreadCountsProduceIdenticalResults) {
  // Reference: plain serial Experiment loop, no runner involved.
  std::vector<ExperimentResult> reference;
  for (ExperimentCell& cell : PinnedCells()) {
    reference.push_back(Experiment(std::move(cell.config)).Run());
  }

  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::vector<CellOutcome> outcomes =
        ParallelRunner(threads).Run(PinnedCells());
    ASSERT_EQ(outcomes.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      SCOPED_TRACE("cell=" + std::to_string(i));
      EXPECT_EQ(outcomes[i].index, i);
      ExpectSameResult(outcomes[i].result, reference[i]);
    }
  }
}

TEST(ParallelRunnerTest, CsvBytesIdenticalAcrossThreadCounts) {
  const std::string dir = ::testing::TempDir();
  std::vector<std::string> golden;
  for (ExperimentCell& cell : PinnedCells()) {
    ExperimentResult r = Experiment(std::move(cell.config)).Run();
    golden.push_back(CsvBytes(r, dir + "/soap_det_serial.csv"));
    EXPECT_FALSE(golden.back().empty());
  }

  for (unsigned threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::vector<CellOutcome> outcomes =
        ParallelRunner(threads).Run(PinnedCells());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      EXPECT_EQ(CsvBytes(outcomes[i].result, dir + "/soap_det_par.csv"),
                golden[i])
          << "cell " << i;
    }
  }
}

TEST(ParallelRunnerTest, OutcomesStreamInInputOrder) {
  // Use trivially small configs: this test is about ordering, not physics.
  std::vector<ExperimentCell> cells;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ExperimentConfig config = PinnedConfig(seed);
    config.workload_options.spec.num_keys = 500;
    config.workload_options.spec.num_templates = 50;
    config.measured_intervals = 1;
    cells.push_back(ExperimentCell{std::move(config)});
  }
  std::vector<size_t> seen;
  ParallelRunner(4).Run(std::move(cells), [&seen](const CellOutcome& out) {
    seen.push_back(out.index);
  });
  EXPECT_EQ(seen, (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ParallelRunnerTest, EmptyCellListIsANoOp) {
  bool called = false;
  std::vector<CellOutcome> outcomes =
      ParallelRunner(8).Run({}, [&called](const CellOutcome&) {
        called = true;
      });
  EXPECT_TRUE(outcomes.empty());
  EXPECT_FALSE(called);
}

TEST(ParseThreadCountTest, ParsesAndClamps) {
  EXPECT_EQ(ParseThreadCount(nullptr), 1u);
  EXPECT_EQ(ParseThreadCount(""), 1u);
  EXPECT_EQ(ParseThreadCount("banana"), 1u);
  EXPECT_EQ(ParseThreadCount("4banana"), 1u);
  EXPECT_EQ(ParseThreadCount("0"), 1u);
  EXPECT_EQ(ParseThreadCount("-3"), 1u);
  EXPECT_EQ(ParseThreadCount("1"), 1u);
  EXPECT_EQ(ParseThreadCount("8"), 8u);
  EXPECT_EQ(ParseThreadCount("99999"), 256u);
}

}  // namespace
}  // namespace soap::engine
