#include "src/core/pid_controller.h"

#include <gtest/gtest.h>

#include <cmath>

namespace soap::core {
namespace {

TEST(PidControllerTest, PureProportional) {
  PidController pid({2.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(pid.Update(0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(pid.Update(-0.25, 1.0), -0.5);
}

TEST(PidControllerTest, PaperGainsAreIdentityOnError) {
  // The paper runs Kp=1, Ki=0, Kd=0: u == e.
  PidController pid({1.0, 0.0, 0.0});
  for (double e : {0.05, 0.2, -0.1, 0.0}) {
    EXPECT_DOUBLE_EQ(pid.Update(e, 20.0), e);
  }
}

TEST(PidControllerTest, IntegralAccumulates) {
  PidController pid({0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(pid.Update(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(pid.Update(1.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(pid.Update(-2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);
}

TEST(PidControllerTest, IntegralScalesWithDt) {
  PidController pid({0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(pid.Update(1.0, 20.0), 20.0);
}

TEST(PidControllerTest, DerivativeRespondsToChange) {
  PidController pid({0.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(pid.Update(1.0, 1.0), 0.0);  // no previous error
  EXPECT_DOUBLE_EQ(pid.Update(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(pid.Update(3.0, 1.0), 0.0);  // steady error
  EXPECT_DOUBLE_EQ(pid.Update(1.0, 0.5), -4.0);  // dt scaling
}

TEST(PidControllerTest, OutputClamped) {
  PidController pid({10.0, 0.0, 0.0});
  pid.SetOutputLimits(0.0, 1.0);
  EXPECT_DOUBLE_EQ(pid.Update(5.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(pid.Update(-5.0, 1.0), 0.0);
}

TEST(PidControllerTest, AntiWindupStopsIntegralWhileSaturated) {
  PidController pid({0.0, 1.0, 0.0});
  pid.SetOutputLimits(0.0, 1.0);
  for (int i = 0; i < 100; ++i) pid.Update(1.0, 1.0);
  // Without anti-windup the integral would be 100 and recovery would
  // take ~99 steps of error -1. With it, recovery is immediate-ish.
  EXPECT_LE(pid.integral(), 2.0);
  double u = 0.0;
  for (int i = 0; i < 3; ++i) u = pid.Update(-1.0, 1.0);
  EXPECT_LT(u, 0.5);
}

TEST(PidControllerTest, ResetClearsState) {
  PidController pid({1.0, 1.0, 1.0});
  pid.Update(1.0, 1.0);
  pid.Update(2.0, 1.0);
  pid.Reset();
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);
  // After reset the derivative term sees no previous error.
  EXPECT_DOUBLE_EQ(pid.Update(1.0, 1.0), 2.0);  // Kp*1 + Ki*1 + Kd*0
}

TEST(PidControllerTest, ClosedLoopConvergesToSetpoint) {
  // Plant: pv += 0.5 * u each step (a simple integrator). A PI controller
  // must drive pv to the setpoint without steady-state error.
  PidController pid({0.8, 0.4, 0.0});
  const double sp = 0.05;
  double pv = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double u = pid.Update(sp - pv, 1.0);
    pv += 0.5 * u - 0.1 * pv;  // leaky plant
  }
  EXPECT_NEAR(pv, sp, 0.005);
}

TEST(PidControllerTest, PControllerHasSteadyStateError) {
  // Same plant with pure P: converges below the setpoint — the classic
  // P-controller offset the paper tolerates with tuned SP values.
  PidController pid({0.8, 0.0, 0.0});
  const double sp = 0.05;
  double pv = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double u = pid.Update(sp - pv, 1.0);
    pv += 0.5 * u - 0.1 * pv;
  }
  EXPECT_LT(pv, sp);
  EXPECT_GT(pv, sp * 0.5);
}

TEST(ZieglerNicholsTest, ClassicRules) {
  PidGains g = ZieglerNichols::Classic(/*ku=*/2.0, /*tu=*/10.0);
  EXPECT_DOUBLE_EQ(g.kp, 1.2);
  EXPECT_DOUBLE_EQ(g.ki, 0.24);
  EXPECT_DOUBLE_EQ(g.kd, 1.5);
}

TEST(ZieglerNicholsTest, PAndPiRules) {
  EXPECT_DOUBLE_EQ(ZieglerNichols::P(2.0).kp, 1.0);
  PidGains pi = ZieglerNichols::PI(2.0, 10.0);
  EXPECT_DOUBLE_EQ(pi.kp, 0.9);
  EXPECT_NEAR(pi.ki, 0.108, 1e-12);
  EXPECT_DOUBLE_EQ(pi.kd, 0.0);
}

TEST(ZieglerNicholsTest, TunedGainsStabilizeOscillatingLoop) {
  // A plant with delay that oscillates under high gain; ZN classic gains
  // derived from its ultimate point should damp it.
  auto simulate = [](PidGains gains) {
    PidController pid(gains);
    double pv = 0.0, prev = 0.0;
    double max_late = 0.0;
    for (int i = 0; i < 300; ++i) {
      const double u = pid.Update(1.0 - pv, 1.0);
      const double next = pv + 0.4 * (u - prev);  // delayed response
      prev = pv;
      pv = next;
      if (i > 250) max_late = std::max(max_late, std::abs(1.0 - pv));
    }
    return max_late;
  };
  const double residual = simulate(ZieglerNichols::PI(2.2, 6.0));
  EXPECT_LT(residual, 0.2);
}

}  // namespace
}  // namespace soap::core
