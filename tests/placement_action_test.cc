// PlacementAction: the unified planner-op type promoted into soap_api.h.
// Pins the compatibility contract of the API redesign — the deprecated
// RepartitionOp/RepartitionOpType aliases and the old enumerator spellings
// (kObjectsMigration, kNewReplicaCreation, kReplicaDeletion) must be
// interchangeable with the new ones, down to deploying byte-identical
// plans — plus the uniform PlacementCost math every candidate is priced
// with.

#include "src/repartition/operation.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <type_traits>

#include "src/core/basic_schedulers.h"
#include "src/core/repartitioner.h"

namespace soap::repartition {
namespace {

// The aliases are the same types, not lookalikes: a pre-redesign call site
// passing a RepartitionOp to a PlacementAction consumer (or vice versa)
// compiles with no conversion at all.
static_assert(std::is_same_v<RepartitionOp, PlacementAction>,
              "RepartitionOp must alias PlacementAction");
static_assert(std::is_same_v<RepartitionOpType, PlacementKind>,
              "RepartitionOpType must alias PlacementKind");

struct SpellingCase {
  const char* name;
  PlacementKind old_spelling;
  PlacementKind new_spelling;
  const char* text;
};

class SpellingTest : public ::testing::TestWithParam<SpellingCase> {};

TEST_P(SpellingTest, OldAndNewSpellingsAreTheSameValue) {
  EXPECT_EQ(GetParam().old_spelling, GetParam().new_spelling);
  EXPECT_STREQ(PlacementKindName(GetParam().old_spelling), GetParam().text);
  EXPECT_STREQ(PlacementKindName(GetParam().new_spelling), GetParam().text);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SpellingTest,
    ::testing::Values(
        SpellingCase{"migration", PlacementKind::kObjectsMigration,
                     PlacementKind::kMigrate, "migrate"},
        SpellingCase{"replica_create", PlacementKind::kNewReplicaCreation,
                     PlacementKind::kReplicaCreate, "replica_create"},
        SpellingCase{"replica_delete", PlacementKind::kReplicaDeletion,
                     PlacementKind::kReplicaDrop, "replica_delete"}),
    [](const ::testing::TestParamInfo<SpellingCase>& info) {
      return std::string(info.param.name);
    });

TEST(PlacementKindTest, LeaderShiftIsNewVocabulary) {
  // kLeaderShift has no deprecated spelling; it exists only in the new API.
  EXPECT_STREQ(PlacementKindName(PlacementKind::kLeaderShift),
               "leader_shift");
}

TEST(PlacementCostTest, NetIsSavingsMinusPenalties) {
  PlacementCost cost;
  cost.move_bytes = 64;
  cost.tpc_savings = 1000.0;
  cost.freshness_penalty = 200.0;
  EXPECT_DOUBLE_EQ(cost.Net(), 1000.0 - 200.0 - 64.0);
}

TEST(PlacementCostTest, DefaultCostIsFree) {
  EXPECT_DOUBLE_EQ(PlacementCost{}.Net(), 0.0);
}

TEST(PlacementCostTest, LeaderShiftMovesNoBytes) {
  // A role swap never copies data; only savings and penalties price it.
  PlacementCost shift;
  shift.tpc_savings = 500.0;
  EXPECT_EQ(shift.move_bytes, 0u);
  EXPECT_DOUBLE_EQ(shift.Net(), 500.0);
}

// --- Deploy equivalence ----------------------------------------------------
// The same placement changes written in the old and the new vocabulary must
// deploy to byte-identical cluster states: same routing, same storage, same
// simulated end time.

class DeployEquivalenceTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kKeys = 30;

  struct Rig {
    Rig()
        : cluster(&sim, Config()),
          tm(&cluster),
          catalog(Spec(), cluster.num_nodes()),
          history(Spec().num_templates, 5),
          rp(&cluster, &tm, &catalog, &history,
             std::make_unique<core::ApplyAllScheduler>()) {
      for (storage::TupleKey k = 0; k < kKeys; ++k) {
        storage::Tuple t;
        t.key = k;
        t.content = static_cast<int64_t>(k) * 10;
        EXPECT_TRUE(cluster.LoadTuple(t, catalog.InitialPartitionOf(k)).ok());
      }
      tm.set_completion_callback(
          [this](const txn::Transaction& t) { rp.OnTxnComplete(t); });
    }

    void Deploy(const RepartitionPlan& plan) {
      ASSERT_TRUE(rp.StartRepartitioningWithPlan(plan));
      sim.Run();
      ASSERT_TRUE(rp.Finished());
      ASSERT_TRUE(rp.FinishRound());
    }

    // One line per key: primary plus the replica set, then the clock.
    std::string Fingerprint() {
      std::ostringstream os;
      for (storage::TupleKey k = 0; k < kKeys; ++k) {
        Result<router::Placement> p = cluster.routing_table().GetPlacement(k);
        os << k << ":p" << p->primary;
        for (uint32_t rep : p->replicas) os << ",r" << rep;
        os << " v=" << cluster.storage(p->primary).Read(k)->content << "\n";
      }
      os << "now=" << sim.Now();
      return os.str();
    }

    sim::Simulator sim;
    cluster::Cluster cluster;
    cluster::TransactionManager tm;
    workload::TemplateCatalog catalog;
    workload::WorkloadHistory history;
    core::Repartitioner rp;
  };

  static cluster::ClusterConfig Config() {
    cluster::ClusterConfig c;
    c.num_keys = kKeys;
    c.network.jitter = 0;
    return c;
  }

  static workload::WorkloadSpec Spec() {
    workload::WorkloadSpec s;
    s.num_templates = 10;
    s.queries_per_txn = 3;  // 10 templates x 3 keys covers all 30 keys
    s.num_keys = kKeys;
    s.alpha = 0.0;
    s.seed = 4;
    return s;
  }

  static PlacementAction Op(uint64_t id, PlacementKind kind,
                            storage::TupleKey key, uint32_t from,
                            uint32_t to) {
    PlacementAction op;
    op.id = id;
    op.kind = kind;
    op.key = key;
    op.source_partition = from;
    op.target_partition = to;
    return op;
  }
};

TEST_F(DeployEquivalenceTest, OldAndNewSpellingsDeployIdentically) {
  Rig old_rig;
  Rig new_rig;

  const uint32_t p0 = *old_rig.cluster.routing_table().GetPrimary(0);
  const uint32_t p1 = *old_rig.cluster.routing_table().GetPrimary(1);
  const uint32_t other0 = (p0 + 1) % old_rig.cluster.num_nodes();
  const uint32_t other1 = (p1 + 1) % old_rig.cluster.num_nodes();

  // Round 1: one migration and one replica creation, spelled both ways.
  RepartitionPlan old_round1;
  old_round1.ops = {
      Op(1, RepartitionOpType::kObjectsMigration, 0, p0, other0),
      Op(2, RepartitionOpType::kNewReplicaCreation, 1, p1, other1)};
  RepartitionPlan new_round1;
  new_round1.ops = {Op(1, PlacementKind::kMigrate, 0, p0, other0),
                    Op(2, PlacementKind::kReplicaCreate, 1, p1, other1)};
  old_rig.Deploy(old_round1);
  new_rig.Deploy(new_round1);
  EXPECT_EQ(old_rig.Fingerprint(), new_rig.Fingerprint());

  // Round 2: shift key 1's leadership onto its new replica (same spelling
  // on both rigs — kLeaderShift has no deprecated alias).
  RepartitionPlan round2;
  round2.ops = {Op(3, PlacementKind::kLeaderShift, 1, p1, other1)};
  old_rig.Deploy(round2);
  new_rig.Deploy(round2);
  EXPECT_EQ(old_rig.Fingerprint(), new_rig.Fingerprint());

  // Round 3: retire the demoted copy, spelled old-style on one rig.
  RepartitionPlan old_round3;
  old_round3.ops = {Op(4, RepartitionOpType::kReplicaDeletion, 1, p1, p1)};
  RepartitionPlan new_round3;
  new_round3.ops = {Op(4, PlacementKind::kReplicaDrop, 1, p1, p1)};
  old_rig.Deploy(old_round3);
  new_rig.Deploy(new_round3);
  EXPECT_EQ(old_rig.Fingerprint(), new_rig.Fingerprint());

  // The shift + drop left key 1 single-copy on the former replica.
  Result<router::Placement> p = old_rig.cluster.routing_table().GetPlacement(1);
  EXPECT_EQ(p->primary, other1);
  EXPECT_EQ(p->copy_count(), 1u);
  EXPECT_TRUE(old_rig.cluster.CheckConsistency().ok());
  EXPECT_TRUE(new_rig.cluster.CheckConsistency().ok());
}

}  // namespace
}  // namespace soap::repartition
