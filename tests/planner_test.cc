#include "src/planner/planner.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <set>

#include "src/cluster/cluster.h"
#include "src/engine/experiment.h"
#include "src/planner/co_access_graph.h"
#include "src/planner/graph_partitioner.h"
#include "src/planner/plan_builder.h"
#include "src/router/routing_table.h"

namespace soap::planner {
namespace {

txn::Transaction MakeTxn(std::initializer_list<storage::TupleKey> keys) {
  txn::Transaction t;
  for (storage::TupleKey k : keys) {
    txn::Operation op;
    op.kind = txn::OpKind::kRead;
    op.key = k;
    t.ops.push_back(op);
  }
  return t;
}

TEST(CoAccessGraphTest, ObserveBuildsSymmetricCliqueEdges) {
  CoAccessGraph graph;
  graph.Observe(MakeTxn({1, 2, 3}));
  EXPECT_EQ(graph.vertex_count(), 3u);
  EXPECT_EQ(graph.edge_count(), 3u);
  EXPECT_EQ(graph.txns_observed(), 1u);
  EXPECT_EQ(graph.VertexWeight(2), 1u);
  EXPECT_EQ(graph.EdgeWeight(1, 3), 1u);
  EXPECT_EQ(graph.EdgeWeight(3, 1), 1u);  // symmetric
  EXPECT_EQ(graph.EdgeWeight(1, 7), 0u);
}

TEST(CoAccessGraphTest, DuplicateKeysCountOnce) {
  CoAccessGraph graph;
  graph.Observe(MakeTxn({5, 5, 9}));
  EXPECT_EQ(graph.vertex_count(), 2u);
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.VertexWeight(5), 1u);
  EXPECT_EQ(graph.EdgeWeight(5, 9), 1u);
}

TEST(CoAccessGraphTest, RepartitionOpsAreNotCoAccess) {
  CoAccessGraph graph;
  txn::Transaction t = MakeTxn({1, 2});
  txn::Operation carried;
  carried.kind = txn::OpKind::kMigrateInsert;
  carried.key = 50;
  carried.repartition_op_id = 7;
  t.ops.push_back(carried);
  graph.Observe(t);
  EXPECT_EQ(graph.vertex_count(), 2u);
  EXPECT_EQ(graph.VertexWeight(50), 0u);
}

TEST(CoAccessGraphTest, DecayHalvesWeightsAndEvictsDeadEdges) {
  CoAccessGraph graph;  // decay_shift = 1
  for (int i = 0; i < 4; ++i) graph.Observe(MakeTxn({1, 2}));
  EXPECT_EQ(graph.EdgeWeight(1, 2), 4u);
  graph.Decay();
  EXPECT_EQ(graph.EdgeWeight(1, 2), 2u);
  EXPECT_EQ(graph.VertexWeight(1), 2u);
  graph.Decay();
  EXPECT_EQ(graph.EdgeWeight(1, 2), 1u);
  // Weight 1 >> 1 = 0 < min_edge_weight: the edge dies and the isolated
  // zero-weight vertices are dropped with it.
  graph.Decay();
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_EQ(graph.vertex_count(), 0u);
}

TEST(CoAccessGraphTest, EdgeCapEvictsLightestFirst) {
  CoAccessGraphConfig config;
  config.max_edges = 1;
  CoAccessGraph graph(config);
  graph.Observe(MakeTxn({1, 2}));
  graph.Observe(MakeTxn({1, 2}));
  graph.Observe(MakeTxn({8, 9}));  // second edge: over cap, lighter
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.EdgeWeight(1, 2), 2u);
  EXPECT_EQ(graph.EdgeWeight(8, 9), 0u);
}

TEST(CoAccessGraphTest, SortedSnapshotsAreSorted) {
  CoAccessGraph graph;
  graph.Observe(MakeTxn({9, 4, 6}));
  graph.Observe(MakeTxn({4, 1}));
  const auto vertices = graph.SortedVertices();
  EXPECT_EQ(vertices, (std::vector<storage::TupleKey>{1, 4, 6, 9}));
  const auto edges = graph.SortedEdges();
  ASSERT_EQ(edges.size(), 4u);
  for (size_t i = 0; i < edges.size(); ++i) {
    EXPECT_LT(edges[i].a, edges[i].b);
    if (i > 0) {
      EXPECT_TRUE(edges[i - 1].a < edges[i].a ||
                  (edges[i - 1].a == edges[i].a && edges[i - 1].b < edges[i].b));
    }
  }
}

TEST(GraphPartitionerTest, MergesCoAccessedGroupAcrossPartitions) {
  // Keys 0,1 live on partition 0; keys 2,3 on partition 1; all four are
  // co-accessed by the same transactions. The clustering must collocate
  // them (cut 0), moving one side. Background keys 10-13 carry enough
  // independent weight on each partition that the merge fits under the
  // balance cap (with only the group in the graph, collocating it would
  // put 100% of the vertex weight on one partition).
  router::RoutingTable routing(16);
  ASSERT_TRUE(routing.SetPrimary(0, 0).ok());
  ASSERT_TRUE(routing.SetPrimary(1, 0).ok());
  ASSERT_TRUE(routing.SetPrimary(2, 1).ok());
  ASSERT_TRUE(routing.SetPrimary(3, 1).ok());
  ASSERT_TRUE(routing.SetPrimary(10, 0).ok());
  ASSERT_TRUE(routing.SetPrimary(11, 0).ok());
  ASSERT_TRUE(routing.SetPrimary(12, 1).ok());
  ASSERT_TRUE(routing.SetPrimary(13, 1).ok());
  CoAccessGraph graph;
  for (int i = 0; i < 8; ++i) graph.Observe(MakeTxn({0, 1, 2, 3}));
  for (int i = 0; i < 24; ++i) {
    graph.Observe(MakeTxn({10, 11}));
    graph.Observe(MakeTxn({12, 13}));
  }
  const Clustering clustering =
      GraphPartitioner().Partition(graph, routing, 2);
  ASSERT_EQ(clustering.keys.size(), 8u);
  // Keys 0-3 are the first four entries of the sorted key list.
  const uint32_t home = clustering.partition_of[0];
  for (size_t i = 1; i < 4; ++i) EXPECT_EQ(clustering.partition_of[i], home);
  EXPECT_EQ(clustering.cut_weight, 0u);
  EXPECT_GT(clustering.internal_weight, 0u);
  EXPECT_GT(clustering.moved, 0u);
}

TEST(GraphPartitionerTest, BalanceStageDrainsOverloadedPartition) {
  // Two independent co-access groups, both resident on partition 0 of 2.
  // Together they exceed the balance cap, so the clustering must move one
  // group (the weaker-attached one) to partition 1 — without cutting
  // either group apart.
  router::RoutingTable routing(8);
  for (storage::TupleKey k = 0; k < 8; ++k) {
    ASSERT_TRUE(routing.SetPrimary(k, 0).ok());
  }
  CoAccessGraph graph;
  for (int i = 0; i < 9; ++i) graph.Observe(MakeTxn({0, 1, 2, 3}));
  for (int i = 0; i < 6; ++i) graph.Observe(MakeTxn({4, 5, 6, 7}));
  const Clustering clustering =
      GraphPartitioner().Partition(graph, routing, 2);
  ASSERT_EQ(clustering.keys.size(), 8u);
  // Each group stays whole...
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(clustering.partition_of[i], clustering.partition_of[0]);
    EXPECT_EQ(clustering.partition_of[4 + i], clustering.partition_of[4]);
  }
  // ...but they end up on different partitions.
  EXPECT_NE(clustering.partition_of[0], clustering.partition_of[4]);
  EXPECT_EQ(clustering.cut_weight, 0u);
}

TEST(GraphPartitionerTest, DeterministicAcrossCalls) {
  router::RoutingTable routing(16);
  for (storage::TupleKey k = 0; k < 16; ++k) {
    ASSERT_TRUE(routing.SetPrimary(k, k % 4).ok());
  }
  CoAccessGraph graph;
  for (int round = 0; round < 5; ++round) {
    for (storage::TupleKey k = 0; k + 3 < 16; k += 2) {
      graph.Observe(MakeTxn({k, k + 1, k + 3}));
    }
  }
  const Clustering a = GraphPartitioner().Partition(graph, routing, 4);
  const Clustering b = GraphPartitioner().Partition(graph, routing, 4);
  EXPECT_EQ(a.keys, b.keys);
  EXPECT_EQ(a.partition_of, b.partition_of);
  EXPECT_EQ(a.cut_weight, b.cut_weight);
  EXPECT_EQ(a.internal_weight, b.internal_weight);
}

class PlanBuilderTest : public ::testing::Test {
 protected:
  PlanBuilderTest()
      : spec_(MakeSpec()),
        catalog_(spec_, 2),
        cost_model_(cluster::ExecutionCosts{}, spec_.queries_per_txn) {}

  static workload::WorkloadSpec MakeSpec() {
    workload::WorkloadSpec s;
    s.num_templates = 10;
    s.num_keys = 100;
    s.alpha = 0.0;  // all templates collocated initially
    return s;
  }

  workload::WorkloadSpec spec_;
  workload::TemplateCatalog catalog_;
  repartition::CostModel cost_model_;
};

TEST_F(PlanBuilderTest, EmitsOneMigrationPerDisagreeingKey) {
  router::RoutingTable routing(100);
  for (storage::TupleKey k = 0; k < 100; ++k) {
    ASSERT_TRUE(routing.SetPrimary(k, 0).ok());
  }
  CoAccessGraph graph;
  for (int i = 0; i < 6; ++i) graph.Observe(MakeTxn({10, 11}));
  Clustering clustering;
  clustering.keys = {10, 11};
  clustering.partition_of = {1, 0};  // key 10 should move, key 11 agrees
  repartition::OpIdAllocator ids;
  PlanBuilder builder(&catalog_, &cost_model_);
  const BuiltPlan built = builder.Build(clustering, graph, routing, &ids);
  ASSERT_EQ(built.plan.size(), 1u);
  EXPECT_EQ(built.plan.ops[0].key, 10u);
  EXPECT_EQ(built.plan.ops[0].source_partition, 0u);
  EXPECT_EQ(built.plan.ops[0].target_partition, 1u);
  EXPECT_EQ(built.plan.ops[0].kind,
            repartition::RepartitionOpType::kObjectsMigration);
  EXPECT_EQ(built.plan.epoch, 1u);
  EXPECT_EQ(built.dropped, 0u);
  EXPECT_GT(built.deploy_cost, 0);
}

TEST_F(PlanBuilderTest, SuccessiveGenerationsNeverReuseOpIds) {
  router::RoutingTable routing(100);
  for (storage::TupleKey k = 0; k < 100; ++k) {
    ASSERT_TRUE(routing.SetPrimary(k, 0).ok());
  }
  CoAccessGraph graph;
  for (int i = 0; i < 4; ++i) graph.Observe(MakeTxn({20, 21, 22}));
  Clustering clustering;
  clustering.keys = {20, 21, 22};
  clustering.partition_of = {1, 1, 1};
  repartition::OpIdAllocator ids;
  PlanBuilder builder(&catalog_, &cost_model_);
  const BuiltPlan first = builder.Build(clustering, graph, routing, &ids);
  const BuiltPlan second = builder.Build(clustering, graph, routing, &ids);
  EXPECT_EQ(first.plan.epoch, 1u);
  EXPECT_EQ(second.plan.epoch, 2u);
  std::set<uint64_t> seen;
  for (const auto& op : first.plan.ops) {
    EXPECT_TRUE(seen.insert(op.id).second) << "duplicate id " << op.id;
  }
  for (const auto& op : second.plan.ops) {
    EXPECT_TRUE(seen.insert(op.id).second) << "duplicate id " << op.id;
  }
}

TEST_F(PlanBuilderTest, MaxOpsCapKeepsHottestTuples) {
  router::RoutingTable routing(100);
  for (storage::TupleKey k = 0; k < 100; ++k) {
    ASSERT_TRUE(routing.SetPrimary(k, 0).ok());
  }
  CoAccessGraph graph;
  for (int i = 0; i < 9; ++i) graph.Observe(MakeTxn({30, 31}));  // hot
  graph.Observe(MakeTxn({40, 41}));                              // cold
  Clustering clustering;
  clustering.keys = {30, 31, 40, 41};
  clustering.partition_of = {1, 1, 1, 1};
  PlanBuilderConfig config;
  config.max_ops = 2;
  repartition::OpIdAllocator ids;
  PlanBuilder builder(&catalog_, &cost_model_, config);
  const BuiltPlan built = builder.Build(clustering, graph, routing, &ids);
  ASSERT_EQ(built.plan.size(), 2u);
  EXPECT_EQ(built.dropped, 2u);
  std::set<storage::TupleKey> kept;
  for (const auto& op : built.plan.ops) kept.insert(op.key);
  EXPECT_TRUE(kept.count(30) == 1 && kept.count(31) == 1);
}

// End-to-end: a small drifting experiment with the planner on must emit
// several generations through the live Repartitioner and pass the
// consistency audit; the same config with the planner off deploys exactly
// the one static generation.
TEST(PlannerExperimentTest, ClosesTheLoopUnderDrift) {
  engine::ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0, /*seed=*/7);
  config.workload_options.spec.num_templates = 60;
  config.workload_options.spec.num_keys = 1'500;
  config.warmup_intervals = 2;
  config.measured_intervals = 8;
  config.workload_options.utilization = 0.9;
  config.deployment.strategy = SchedulingStrategy::kApplyAll;
  config.workload_options.spec = workload::WorkloadSpec::HotspotDrift(
      config.workload_options.spec, /*first_interval=*/2, /*num_phases=*/2,
      /*phase_len=*/4);
  config.seed = 3;

  engine::ExperimentConfig adaptive = config;
  adaptive.planner_options.enabled = true;
  adaptive.planner_options.replan_period = 2;
  adaptive.planner_options.min_plan_ops = 4;

  const engine::ExperimentResult stat = engine::Experiment(config).Run();
  const engine::ExperimentResult adap = engine::Experiment(adaptive).Run();

  EXPECT_TRUE(stat.audit.ok()) << stat.audit.ToString();
  EXPECT_TRUE(adap.audit.ok()) << adap.audit.ToString();
  EXPECT_EQ(stat.plan_generations, 1u);
  EXPECT_EQ(stat.planner_stats.plans_emitted, 0u);
  EXPECT_GE(adap.plan_generations, 2u);
  EXPECT_GE(adap.planner_stats.plans_emitted, 2u);
  EXPECT_GT(adap.planner_stats.txns_observed, 0u);
  EXPECT_GT(adap.planner_stats.ops_emitted, 0u);
  // Whether the online plan BEATS the static one is a performance claim;
  // bench_adaptive gates it on a full-size grid. Here we only pin down
  // that the loop actually closed: generations were planned, built and
  // deployed through the live repartitioner without corrupting state.
}

TEST(PlannerExperimentTest, PlannerRunIsReproducible) {
  engine::ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0, /*seed=*/7);
  config.workload_options.spec.num_templates = 40;
  config.workload_options.spec.num_keys = 1'000;
  config.warmup_intervals = 1;
  config.measured_intervals = 5;
  config.workload_options.utilization = 0.9;
  config.workload_options.spec = workload::WorkloadSpec::SkewFlip(
      config.workload_options.spec, /*first_interval=*/1, /*num_phases=*/2,
      /*phase_len=*/2);
  config.planner_options.enabled = true;
  config.planner_options.replan_period = 2;
  config.seed = 11;

  const engine::ExperimentResult a = engine::Experiment(config).Run();
  const engine::ExperimentResult b = engine::Experiment(config).Run();
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.counters.committed_normal, b.counters.committed_normal);
  EXPECT_EQ(a.planner_stats.plans_emitted, b.planner_stats.plans_emitted);
  EXPECT_EQ(a.planner_stats.ops_emitted, b.planner_stats.ops_emitted);
  EXPECT_EQ(a.plan_generations, b.plan_generations);
  EXPECT_EQ(a.distributed_ratio.values(), b.distributed_ratio.values());
}

}  // namespace
}  // namespace soap::planner
