#include "src/cluster/processing_queue.h"

#include <gtest/gtest.h>

namespace soap::cluster {
namespace {

std::unique_ptr<txn::Transaction> Make(txn::TxnId id,
                                       txn::TxnPriority priority) {
  auto t = std::make_unique<txn::Transaction>();
  t->id = id;
  t->priority = priority;
  return t;
}

TEST(ProcessingQueueTest, EmptyPopsNull) {
  ProcessingQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Pop(), nullptr);
}

TEST(ProcessingQueueTest, HigherPriorityFirst) {
  ProcessingQueue q;
  q.Push(Make(1, txn::TxnPriority::kLow));
  q.Push(Make(2, txn::TxnPriority::kNormal));
  q.Push(Make(3, txn::TxnPriority::kHigh));
  EXPECT_EQ(q.Pop()->id, 3u);
  EXPECT_EQ(q.Pop()->id, 2u);
  EXPECT_EQ(q.Pop()->id, 1u);
}

TEST(ProcessingQueueTest, FifoWithinPriority) {
  ProcessingQueue q;
  for (txn::TxnId id = 1; id <= 5; ++id) {
    q.Push(Make(id, txn::TxnPriority::kNormal));
  }
  for (txn::TxnId id = 1; id <= 5; ++id) EXPECT_EQ(q.Pop()->id, id);
}

TEST(ProcessingQueueTest, PushMarksQueuedState) {
  ProcessingQueue q;
  q.Push(Make(1, txn::TxnPriority::kNormal));
  auto t = q.Pop();
  EXPECT_EQ(t->state, txn::TxnState::kQueued);
}

TEST(ProcessingQueueTest, PeekPriorityMatchesPop) {
  ProcessingQueue q;
  q.Push(Make(1, txn::TxnPriority::kLow));
  EXPECT_EQ(q.PeekPriority(), txn::TxnPriority::kLow);
  q.Push(Make(2, txn::TxnPriority::kHigh));
  EXPECT_EQ(q.PeekPriority(), txn::TxnPriority::kHigh);
}

TEST(ProcessingQueueTest, Counts) {
  ProcessingQueue q;
  q.Push(Make(1, txn::TxnPriority::kLow));
  q.Push(Make(2, txn::TxnPriority::kLow));
  q.Push(Make(3, txn::TxnPriority::kNormal));
  q.Push(Make(4, txn::TxnPriority::kHigh));
  EXPECT_EQ(q.Size(), 4u);
  EXPECT_EQ(q.CountByPriority(txn::TxnPriority::kLow), 2u);
  EXPECT_EQ(q.NormalOrHigherCount(), 2u);
}

TEST(ProcessingQueueTest, ExtractRemovesById) {
  ProcessingQueue q;
  q.Push(Make(1, txn::TxnPriority::kNormal));
  q.Push(Make(2, txn::TxnPriority::kNormal));
  q.Push(Make(3, txn::TxnPriority::kNormal));
  auto t = q.Extract(2);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->id, 2u);
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(q.Pop()->id, 1u);
  EXPECT_EQ(q.Pop()->id, 3u);
}

TEST(ProcessingQueueTest, ExtractMissingReturnsNull) {
  ProcessingQueue q;
  q.Push(Make(1, txn::TxnPriority::kNormal));
  EXPECT_EQ(q.Extract(9), nullptr);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(ProcessingQueueTest, ExtractThenRepushChangesClass) {
  // The promotion path: extract a low transaction, bump its priority,
  // push it back; it should now beat older normal transactions? No —
  // FIFO within the new class, so it goes to the back of kNormal.
  ProcessingQueue q;
  q.Push(Make(1, txn::TxnPriority::kNormal));
  q.Push(Make(2, txn::TxnPriority::kLow));
  auto t = q.Extract(2);
  t->priority = txn::TxnPriority::kNormal;
  q.Push(std::move(t));
  EXPECT_EQ(q.Pop()->id, 1u);
  EXPECT_EQ(q.Pop()->id, 2u);
}

TEST(ProcessingQueueTest, MaxSizeSeen) {
  ProcessingQueue q;
  q.Push(Make(1, txn::TxnPriority::kNormal));
  q.Push(Make(2, txn::TxnPriority::kNormal));
  q.Pop();
  q.Pop();
  q.Push(Make(3, txn::TxnPriority::kNormal));
  EXPECT_EQ(q.max_size_seen(), 2u);
}

}  // namespace
}  // namespace soap::cluster
