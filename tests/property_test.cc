// Cross-cutting property sweeps: liveness of sorted multi-key locking,
// simulator determinism and ordering under random schedules, histogram
// quantile correctness against exact order statistics, and routing-table
// conservation under random migration storms.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/router/routing_table.h"
#include "src/sim/simulator.h"
#include "src/txn/lock_manager.h"

namespace soap {
namespace {

// ---------------------------------------------------------------------
// Lock manager: transactions that acquire multi-key sets in sorted order
// never deadlock, and every queued request is eventually granted
// (liveness under the discipline the executor uses).
// ---------------------------------------------------------------------

class SortedLockingLiveness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SortedLockingLiveness, EveryTxnEventuallyFinishes) {
  Rng rng(GetParam());
  txn::LockManager lm;

  struct Txn {
    txn::TxnId id;
    std::vector<storage::TupleKey> keys;  // sorted
    size_t next = 0;
    bool finished = false;
  };
  std::vector<Txn> txns;
  for (txn::TxnId id = 1; id <= 60; ++id) {
    std::vector<storage::TupleKey> keys;
    const auto count = 1 + rng.NextUint64(4);
    while (keys.size() < count) {
      const storage::TupleKey k = rng.NextUint64(12);
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
    std::sort(keys.begin(), keys.end());
    txns.push_back({id, std::move(keys), 0, false});
  }

  // Work queue of transactions ready to try their next acquisition.
  std::vector<size_t> ready;
  for (size_t i = 0; i < txns.size(); ++i) ready.push_back(i);

  std::function<void(size_t)> pump = [&](size_t i) {
    Txn& t = txns[i];
    while (t.next < t.keys.size()) {
      auto outcome = lm.Acquire(t.id, t.keys[t.next],
                                txn::LockMode::kExclusive,
                                [&, i]() { pump(i); });
      if (outcome == txn::AcquireOutcome::kQueued) return;
      ASSERT_NE(outcome, txn::AcquireOutcome::kDeadlock)
          << "sorted acquisition must never deadlock";
      ++t.next;
    }
    if (!t.finished) {
      t.finished = true;
      lm.ReleaseAll(t.id);
    }
  };
  for (size_t i : ready) pump(i);

  for (const Txn& t : txns) {
    EXPECT_TRUE(t.finished) << "txn " << t.id << " starved";
  }
  EXPECT_EQ(lm.LockedKeyCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortedLockingLiveness,
                         ::testing::Range<uint64_t>(100, 115));

// ---------------------------------------------------------------------
// Simulator: random schedules execute in exact (time, insertion) order
// and identically across two identical runs.
// ---------------------------------------------------------------------

class SimulatorOrdering : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorOrdering, RandomSchedulesExecuteInOrder) {
  auto run = [&](std::vector<std::pair<SimTime, int>>* log) {
    Rng rng(GetParam());
    sim::Simulator sim;
    for (int i = 0; i < 300; ++i) {
      const SimTime at = static_cast<SimTime>(rng.NextUint64(1000));
      sim.At(at, [log, at, i]() { log->emplace_back(at, i); });
    }
    sim.Run();
  };
  std::vector<std::pair<SimTime, int>> a, b;
  run(&a);
  run(&b);
  ASSERT_EQ(a.size(), 300u);
  EXPECT_EQ(a, b);  // determinism
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].first, a[i].first);  // time order
    if (a[i - 1].first == a[i].first) {
      EXPECT_LT(a[i - 1].second, a[i].second);  // insertion tie-break
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorOrdering,
                         ::testing::Range<uint64_t>(200, 210));

// ---------------------------------------------------------------------
// Histogram: quantiles within one exponential bucket of the exact order
// statistic, across distribution shapes.
// ---------------------------------------------------------------------

class HistogramQuantiles : public ::testing::TestWithParam<int> {};

TEST_P(HistogramQuantiles, WithinBucketOfExact) {
  Rng rng(7);
  std::vector<uint64_t> samples;
  Histogram h;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = 0;
    switch (GetParam()) {
      case 0:  // uniform
        v = rng.NextUint64(1 << 20);
        break;
      case 1:  // exponential-ish
        v = static_cast<uint64_t>(rng.NextExponential(5000.0));
        break;
      case 2:  // heavy-tailed
        v = static_cast<uint64_t>(
            std::pow(10.0, 2.0 + 4.0 * rng.NextDouble()));
        break;
      default:  // bimodal
        v = rng.NextBernoulli(0.5) ? rng.NextUint64(100)
                                   : 1000000 + rng.NextUint64(100);
        break;
    }
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double p : {50.0, 90.0, 99.0}) {
    const double approx = h.Percentile(p);
    const uint64_t exact =
        samples[static_cast<size_t>(p / 100.0 * (samples.size() - 1))];
    // Exponential buckets: the estimate is within a factor of 2 of the
    // exact order statistic (plus slack at the very bottom).
    EXPECT_LE(approx, static_cast<double>(exact) * 2.0 + 4.0)
        << "p" << p;
    EXPECT_GE(approx, static_cast<double>(exact) / 2.0 - 4.0)
        << "p" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, HistogramQuantiles,
                         ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------
// Routing table: a random storm of migrations conserves exactly one
// primary per key and never loses a key.
// ---------------------------------------------------------------------

class RoutingConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoutingConservation, MigrationStormConservesKeys) {
  Rng rng(GetParam());
  constexpr uint64_t kKeys = 200;
  constexpr uint32_t kParts = 5;
  router::RoutingTable rt(kKeys);
  for (storage::TupleKey k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(rt.SetPrimary(k, static_cast<uint32_t>(k % kParts)).ok());
  }
  for (int i = 0; i < 5000; ++i) {
    const storage::TupleKey key = rng.NextUint64(kKeys);
    const auto from = *rt.GetPrimary(key);
    const auto to = static_cast<uint32_t>(rng.NextUint64(kParts));
    if (rng.NextBernoulli(0.1)) {
      // Occasionally try an invalid migration; it must be rejected
      // without corrupting anything.
      const uint32_t wrong = (from + 1) % kParts;
      EXPECT_FALSE(rt.Migrate(key, wrong, to).ok());
    } else {
      EXPECT_TRUE(rt.Migrate(key, from, to).ok());
    }
  }
  uint64_t total = 0;
  for (uint32_t p = 0; p < kParts; ++p) total += rt.CountPrimaries(p);
  EXPECT_EQ(total, kKeys);
  for (storage::TupleKey k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(rt.GetPrimary(k).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingConservation,
                         ::testing::Range<uint64_t>(300, 308));

}  // namespace
}  // namespace soap
