#include "src/router/query_parser.h"

#include <gtest/gtest.h>

namespace soap::router {
namespace {

TEST(QueryParserTest, BasicSelect) {
  auto r = QueryParser::Parse("SELECT content FROM t WHERE key = 42");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, ParsedQuery::Kind::kSelect);
  EXPECT_EQ(r->key, 42u);
  EXPECT_EQ(r->table, "t");
}

TEST(QueryParserTest, BasicUpdate) {
  auto r = QueryParser::Parse("UPDATE items SET content = -7 WHERE key = 9");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, ParsedQuery::Kind::kUpdate);
  EXPECT_EQ(r->key, 9u);
  EXPECT_EQ(r->value, -7);
  EXPECT_EQ(r->table, "items");
}

TEST(QueryParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(QueryParser::Parse("select content from t where key = 1").ok());
  EXPECT_TRUE(
      QueryParser::Parse("UpDaTe t SeT content = 2 WhErE key = 1").ok());
}

TEST(QueryParserTest, FlexibleWhitespace) {
  EXPECT_TRUE(QueryParser::Parse("  SELECT   content\tFROM  t\n WHERE key=5 ")
                  .ok());
  EXPECT_TRUE(
      QueryParser::Parse("UPDATE t SET content=1 WHERE key=2;").ok());
}

TEST(QueryParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(
      QueryParser::Parse("SELECT content FROM t WHERE key = 1;").ok());
}

TEST(QueryParserTest, KeywordPrefixIdentifiersAccepted) {
  // "selection" must not parse as the keyword SELECT.
  EXPECT_FALSE(
      QueryParser::Parse("selection content FROM t WHERE key = 1").ok());
  // Table names sharing keyword prefixes are fine.
  auto r = QueryParser::Parse("SELECT content FROM fromage WHERE key = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table, "fromage");
}

TEST(QueryParserTest, RoundTripSelect) {
  ParsedQuery q;
  q.kind = ParsedQuery::Kind::kSelect;
  q.key = 123;
  q.table = "t";
  auto r = QueryParser::Parse(QueryParser::ToSql(q));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->key, 123u);
}

TEST(QueryParserTest, RoundTripUpdate) {
  ParsedQuery q;
  q.kind = ParsedQuery::Kind::kUpdate;
  q.key = 5;
  q.value = 999;
  q.table = "data";
  auto r = QueryParser::Parse(QueryParser::ToSql(q));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, ParsedQuery::Kind::kUpdate);
  EXPECT_EQ(r->value, 999);
}

struct InvalidCase {
  const char* name;
  const char* sql;
};

class InvalidQueries : public ::testing::TestWithParam<InvalidCase> {};

TEST_P(InvalidQueries, Rejected) {
  auto r = QueryParser::Parse(GetParam().sql);
  EXPECT_FALSE(r.ok()) << GetParam().sql;
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, InvalidQueries,
    ::testing::Values(
        InvalidCase{"Empty", ""},
        InvalidCase{"Garbage", "DROP TABLE t"},
        InvalidCase{"MissingFrom", "SELECT content t WHERE key = 1"},
        InvalidCase{"MissingWhere", "SELECT content FROM t"},
        InvalidCase{"NonKeyPredicate",
                    "SELECT content FROM t WHERE name = 1"},
        InvalidCase{"MissingKeyLiteral",
                    "SELECT content FROM t WHERE key ="},
        InvalidCase{"NegativeKey", "SELECT content FROM t WHERE key = -3"},
        InvalidCase{"TrailingJunk",
                    "SELECT content FROM t WHERE key = 1 ORDER BY x"},
        InvalidCase{"UpdateMissingSet", "UPDATE t content = 1 WHERE key = 2"},
        InvalidCase{"UpdateMissingValue",
                    "UPDATE t SET content = WHERE key = 2"},
        InvalidCase{"RangePredicate",
                    "SELECT content FROM t WHERE key > 5"}),
    [](const ::testing::TestParamInfo<InvalidCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace soap::router
