#include "src/router/query_router.h"

#include <gtest/gtest.h>

namespace soap::router {
namespace {

TEST(QueryRouterTest, ReadsAndWritesRouteToPrimary) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(3, 2).ok());
  QueryRouter router(&rt);
  EXPECT_EQ(*router.RouteRead(3), 2u);
  EXPECT_EQ(*router.RouteWrite(3), 2u);
  EXPECT_EQ(router.routed_queries(), 2u);
}

TEST(QueryRouterTest, UnroutedKeyPropagatesNotFound) {
  RoutingTable rt(10);
  QueryRouter router(&rt);
  EXPECT_TRUE(router.RouteRead(9).status().IsNotFound());
}

TEST(QueryRouterTest, RoundRobinSpreadsReads) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(3, 0).ok());
  ASSERT_TRUE(rt.AddReplica(3, 1).ok());
  QueryRouter router(&rt, ReplicaPolicy::kRoundRobin);
  int on_primary = 0, on_replica = 0;
  for (int i = 0; i < 10; ++i) {
    PartitionId p = *router.RouteRead(3);
    (p == 0 ? on_primary : on_replica)++;
  }
  EXPECT_EQ(on_primary, 5);
  EXPECT_EQ(on_replica, 5);
  // Writes always hit the primary, regardless of policy.
  EXPECT_EQ(*router.RouteWrite(3), 0u);
}

TEST(QueryRouterTest, RouteTransactionFillsPartitionsAndReturnsSet) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(1, 0).ok());
  ASSERT_TRUE(rt.SetPrimary(2, 1).ok());
  ASSERT_TRUE(rt.SetPrimary(3, 0).ok());
  QueryRouter router(&rt);

  txn::Transaction t;
  for (storage::TupleKey k : {1ULL, 2ULL, 3ULL}) {
    txn::Operation op;
    op.kind = k == 2 ? txn::OpKind::kWrite : txn::OpKind::kRead;
    op.key = k;
    t.ops.push_back(op);
  }
  auto partitions = router.RouteTransaction(&t);
  ASSERT_TRUE(partitions.ok());
  EXPECT_EQ(partitions->size(), 2u);
  EXPECT_FALSE(QueryRouter::IsCollocated(*partitions));
  EXPECT_EQ(t.ops[0].source_partition, 0u);
  EXPECT_EQ(t.ops[1].source_partition, 1u);
}

TEST(QueryRouterTest, CollocatedTransactionDetected) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(1, 3).ok());
  ASSERT_TRUE(rt.SetPrimary(2, 3).ok());
  QueryRouter router(&rt);
  txn::Transaction t;
  for (storage::TupleKey k : {1ULL, 2ULL}) {
    txn::Operation op;
    op.kind = txn::OpKind::kRead;
    op.key = k;
    t.ops.push_back(op);
  }
  auto partitions = router.RouteTransaction(&t);
  ASSERT_TRUE(partitions.ok());
  EXPECT_TRUE(QueryRouter::IsCollocated(*partitions));
}

TEST(QueryRouterTest, RouteSqlSelect) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(7, 4).ok());
  QueryRouter router(&rt);
  auto p = router.RouteSql("SELECT content FROM t WHERE key = 7");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, 4u);
}

TEST(QueryRouterTest, RouteSqlUpdate) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(7, 4).ok());
  QueryRouter router(&rt);
  auto p = router.RouteSql("UPDATE t SET content = 1 WHERE key = 7");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, 4u);
}

TEST(QueryRouterTest, RouteSqlBadQueryFails) {
  RoutingTable rt(10);
  QueryRouter router(&rt);
  EXPECT_FALSE(router.RouteSql("nonsense").ok());
}

TEST(QueryRouterTest, RoutingFollowsMigration) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(5, 0).ok());
  QueryRouter router(&rt);
  EXPECT_EQ(*router.RouteRead(5), 0u);
  ASSERT_TRUE(rt.Migrate(5, 0, 3).ok());
  EXPECT_EQ(*router.RouteRead(5), 3u);
}

}  // namespace
}  // namespace soap::router
