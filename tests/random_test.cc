#include "src/common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace soap {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedSamplingInRange) {
  Rng rng(7);
  for (uint64_t n : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextUint64(n), n);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, PoissonMeanAndVariance) {
  Rng rng(13);
  const double mean = 20.0;
  const int trials = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < trials; ++i) {
    double v = static_cast<double>(rng.NextPoisson(mean));
    sum += v;
    sq += v * v;
  }
  const double m = sum / trials;
  const double var = sq / trials - m * m;
  EXPECT_NEAR(m, mean, 0.3);
  EXPECT_NEAR(var, mean, 1.5);  // Poisson: variance == mean
}

TEST(RngTest, PoissonLargeMeanUsesGaussianPath) {
  Rng rng(17);
  const double mean = 5000.0;
  double sum = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(rng.NextPoisson(mean));
  }
  EXPECT_NEAR(sum / trials, mean, 25.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.NextPoisson(0.0), 0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / trials, 4.0, 0.15);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0.0, sq = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.03);
  EXPECT_NEAR(sq / trials, 1.0, 0.05);
}

TEST(RngTest, PermutationIsBijective) {
  Rng rng(29);
  auto perm = rng.Permutation(1000);
  std::vector<bool> seen(1000, false);
  for (uint32_t v : perm) {
    ASSERT_LT(v, 1000u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(31);
  ZipfSampler zipf(100, 1.16);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 100u);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(500, 1.16);
  double sum = 0.0;
  for (uint64_t k = 0; k < 500; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfSampler zipf(1000, 1.16);
  for (uint64_t k = 1; k < 1000; ++k) {
    EXPECT_GT(zipf.Pmf(k - 1), zipf.Pmf(k));
  }
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  Rng rng(37);
  const uint64_t n = 200;
  ZipfSampler zipf(n, 1.16);
  const int trials = 200000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < trials; ++i) counts[zipf.Sample(rng)]++;
  // Head of the distribution should match the pmf within a few percent.
  for (uint64_t k = 0; k < 10; ++k) {
    const double expected = zipf.Pmf(k) * trials;
    EXPECT_NEAR(counts[k], expected, expected * 0.08 + 20.0)
        << "rank " << k;
  }
}

TEST(ZipfTest, EightyTwentyRuleAtPaperParameters) {
  // The paper picks s = 1.16 over 23,457 templates so that ~20% of the
  // distinct transactions draw ~80% of the traffic.
  const uint64_t n = 23'457;
  ZipfSampler zipf(n, 1.16);
  double head = 0.0;
  for (uint64_t k = 0; k < n / 5; ++k) head += zipf.Pmf(k);
  // At these parameters the head actually carries ~93% — at least the
  // 80% the rule names, and far more than the 20% a uniform would give.
  EXPECT_GT(head, 0.80);
  EXPECT_LT(head, 0.97);
}

TEST(ZipfTest, SingleItemAlwaysRankZero) {
  Rng rng(41);
  ZipfSampler zipf(1, 1.16);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, ExponentOneSupported) {
  Rng rng(43);
  ZipfSampler zipf(50, 1.0);
  double sum = 0.0;
  for (uint64_t k = 0; k < 50; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 50u);
}

/// Property sweep: the sampler must stay in range and hit rank 0 most
/// often across a grid of (n, s) shapes.
class ZipfSweep : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(ZipfSweep, RankZeroIsMode) {
  auto [n, s] = GetParam();
  Rng rng(47);
  ZipfSampler zipf(n, s);
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 30000; ++i) counts[zipf.Sample(rng)]++;
  for (uint64_t k = 1; k < n; ++k) EXPECT_LE(counts[k], counts[0] + 60);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZipfSweep,
    ::testing::Combine(::testing::Values<uint64_t>(2, 10, 100, 5000),
                       ::testing::Values(0.5, 0.99, 1.0, 1.16, 2.0)));

}  // namespace
}  // namespace soap
