#include "src/core/repartition_txn.h"

#include <gtest/gtest.h>

namespace soap::core {
namespace {

RepartitionTxn Make(uint32_t tmpl, double density, size_t ops = 2) {
  RepartitionTxn rt;
  rt.beneficiary_template = tmpl;
  rt.density = density;
  rt.benefit = density * 100.0;
  rt.cost = 100.0;
  for (size_t i = 0; i < ops; ++i) {
    repartition::RepartitionOp op;
    op.id = tmpl * 10 + i + 1;
    op.key = tmpl * 10 + i;
    op.source_partition = 1;
    op.target_partition = 0;
    rt.ops.push_back(op);
  }
  return rt;
}

TEST(RegistryTest, InitAssignsRidsAndCountsOps) {
  RepartitionRegistry reg;
  reg.Init({Make(0, 3.0), Make(1, 2.0), Make(2, 1.0)});
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.total_ops(), 6u);
  EXPECT_EQ(reg.pending_count(), 3u);
  EXPECT_EQ(reg.done_count(), 0u);
  EXPECT_FALSE(reg.AllDone());
  EXPECT_EQ(reg.Get(1)->rid, 1u);
  EXPECT_EQ(reg.Get(4), nullptr);
  EXPECT_EQ(reg.Get(0), nullptr);
}

TEST(RegistryTest, NextPendingIsDensest) {
  RepartitionRegistry reg;
  reg.Init({Make(0, 1.0), Make(1, 9.0), Make(2, 5.0)});
  EXPECT_EQ(reg.NextPending()->beneficiary_template, 1u);
  reg.MarkSubmitted(reg.NextPending()->rid, 100);
  EXPECT_EQ(reg.NextPending()->beneficiary_template, 2u);
}

TEST(RegistryTest, FindPendingByTemplate) {
  RepartitionRegistry reg;
  reg.Init({Make(7, 1.0), Make(9, 2.0)});
  RepartitionTxn* rt = reg.FindPendingByTemplate(7);
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->beneficiary_template, 7u);
  EXPECT_EQ(reg.FindPendingByTemplate(8), nullptr);
  reg.MarkPiggybacked(rt->rid, 0);
  EXPECT_EQ(reg.FindPendingByTemplate(7), nullptr);  // no longer pending
}

TEST(RegistryTest, LifecycleSubmitDone) {
  RepartitionRegistry reg;
  reg.Init({Make(0, 1.0)});
  RepartitionTxn* rt = reg.NextPending();
  reg.MarkSubmitted(rt->rid, 55);
  EXPECT_EQ(rt->state, RepartitionTxn::State::kSubmitted);
  EXPECT_EQ(rt->carrier, 55u);
  EXPECT_EQ(rt->attempts, 1u);
  EXPECT_EQ(reg.pending_count(), 0u);
  reg.MarkDone(rt->rid);
  EXPECT_TRUE(reg.AllDone());
  EXPECT_EQ(reg.NextPending(), nullptr);
}

TEST(RegistryTest, AbortRevertsToPendingAndRetries) {
  RepartitionRegistry reg;
  reg.Init({Make(0, 1.0), Make(1, 5.0)});
  RepartitionTxn* hot = reg.NextPending();  // template 1
  reg.MarkSubmitted(hot->rid, 7);
  reg.MarkPending(hot->rid);  // aborted
  EXPECT_EQ(hot->state, RepartitionTxn::State::kPending);
  EXPECT_EQ(hot->carrier, 0u);
  // Still ranked first among pending.
  EXPECT_EQ(reg.NextPending(), hot);
  reg.MarkSubmitted(hot->rid, 8);
  EXPECT_EQ(hot->attempts, 2u);
}

TEST(RegistryTest, MarkDoneIdempotent) {
  RepartitionRegistry reg;
  reg.Init({Make(0, 1.0)});
  reg.MarkDone(1);
  reg.MarkDone(1);
  EXPECT_EQ(reg.done_count(), 1u);
  EXPECT_TRUE(reg.AllDone());
}

TEST(RegistryTest, MarkDoneFromPendingDirectly) {
  // A piggybacked txn applied by someone else can complete while pending.
  RepartitionRegistry reg;
  reg.Init({Make(0, 1.0), Make(1, 2.0)});
  reg.MarkDone(1);
  EXPECT_EQ(reg.pending_count(), 1u);
  EXPECT_EQ(reg.done_count(), 1u);
}

TEST(RegistryTest, MakeTransactionEmitsMigrationPairs) {
  RepartitionTxn rt = Make(3, 1.0, 2);
  auto t =
      RepartitionRegistry::MakeTransaction(rt, txn::TxnPriority::kHigh);
  EXPECT_TRUE(t->is_repartition);
  EXPECT_EQ(t->priority, txn::TxnPriority::kHigh);
  EXPECT_EQ(t->template_id, 3u);
  ASSERT_EQ(t->ops.size(), 4u);  // insert+delete per unit
  EXPECT_EQ(t->ops[0].kind, txn::OpKind::kMigrateInsert);
  EXPECT_EQ(t->ops[1].kind, txn::OpKind::kMigrateDelete);
  EXPECT_EQ(t->ops[0].key, t->ops[1].key);
  EXPECT_EQ(t->ops[0].repartition_op_id, t->ops[1].repartition_op_id);
}

TEST(RegistryTest, MakeTransactionOrdersOpsByKey) {
  RepartitionTxn rt;
  rt.beneficiary_template = 0;
  for (storage::TupleKey k : {50ULL, 10ULL, 30ULL}) {
    repartition::RepartitionOp op;
    op.id = k;
    op.key = k;
    rt.ops.push_back(op);
  }
  auto t = RepartitionRegistry::MakeTransaction(rt, txn::TxnPriority::kLow);
  ASSERT_EQ(t->ops.size(), 6u);
  EXPECT_EQ(t->ops[0].key, 10u);
  EXPECT_EQ(t->ops[2].key, 30u);
  EXPECT_EQ(t->ops[4].key, 50u);
}

TEST(RegistryTest, InjectIntoAppendsPiggybackOps) {
  RepartitionTxn rt = Make(5, 1.0, 1);
  rt.rid = 42;
  txn::Transaction carrier;
  carrier.template_id = 5;
  txn::Operation read;
  read.kind = txn::OpKind::kRead;
  carrier.ops.push_back(read);
  RepartitionRegistry::InjectInto(rt, &carrier);
  EXPECT_EQ(carrier.piggyback_source, 42u);
  EXPECT_EQ(carrier.ops.size(), 1u);           // untouched
  EXPECT_EQ(carrier.piggyback_ops.size(), 2u); // insert+delete
  EXPECT_TRUE(carrier.has_piggyback());
}

TEST(RegistryTest, ReplicaOpsMapToReplicaOpKinds) {
  RepartitionTxn rt;
  rt.beneficiary_template = 0;
  repartition::RepartitionOp create;
  create.id = 1;
  create.key = 5;
  create.kind = repartition::RepartitionOpType::kNewReplicaCreation;
  create.target_partition = 2;
  repartition::RepartitionOp del;
  del.id = 2;
  del.key = 6;
  del.kind = repartition::RepartitionOpType::kReplicaDeletion;
  del.source_partition = 1;
  rt.ops = {create, del};
  auto t = RepartitionRegistry::MakeTransaction(rt, txn::TxnPriority::kLow);
  ASSERT_EQ(t->ops.size(), 2u);
  EXPECT_EQ(t->ops[0].kind, txn::OpKind::kReplicaCreate);
  EXPECT_EQ(t->ops[1].kind, txn::OpKind::kReplicaDelete);
}

}  // namespace
}  // namespace soap::core
