// Orchestration tests for the Repartitioner: plan derivation and registry
// wiring, optimizer triggering, Algorithm 2's carrier bookkeeping
// (stripped resubmission), RepRate accounting, and resilience to vote
// aborts of repartition transactions.

#include "src/core/repartitioner.h"

#include <gtest/gtest.h>

#include "src/core/basic_schedulers.h"
#include "src/core/hybrid_scheduler.h"
#include "src/core/piggyback_scheduler.h"
#include "src/workload/generator.h"

namespace soap::core {
namespace {

class RepartitionerTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kTemplates = 60;
  static constexpr uint64_t kKeys = 600;

  RepartitionerTest()
      : cluster_(&sim_, MakeClusterConfig()),
        tm_(&cluster_),
        catalog_(MakeSpec(), cluster_.num_nodes()),
        history_(kTemplates, 10) {
    for (uint64_t key = 0; key < kKeys; ++key) {
      storage::Tuple tuple;
      tuple.key = key;
      tuple.content = static_cast<int64_t>(key);
      EXPECT_TRUE(
          cluster_.LoadTuple(tuple, catalog_.InitialPartitionOf(key)).ok());
    }
  }

  static cluster::ClusterConfig MakeClusterConfig() {
    cluster::ClusterConfig c;
    c.num_keys = kKeys;
    c.network.jitter = 0;
    return c;
  }

  static workload::WorkloadSpec MakeSpec() {
    workload::WorkloadSpec s;
    s.distribution = workload::PopularityDist::kZipf;
    s.num_templates = kTemplates;
    s.num_keys = kKeys;
    s.alpha = 1.0;
    s.seed = 31;
    return s;
  }

  std::unique_ptr<Repartitioner> MakeRepartitioner(
      std::unique_ptr<Scheduler> scheduler,
      repartition::OptimizerConfig opt = {}) {
    auto rp = std::make_unique<Repartitioner>(
        &cluster_, &tm_, &catalog_, &history_, std::move(scheduler), opt);
    tm_.set_pre_execution_hook(
        [r = rp.get()](txn::Transaction* t) { r->OnBeforeExecute(t); });
    tm_.set_completion_callback(
        [r = rp.get()](const txn::Transaction& t) { r->OnTxnComplete(t); });
    return rp;
  }

  void WarmHistory() {
    workload::WorkloadGenerator gen(&catalog_, 5);
    for (int i = 0; i < 2000; ++i) history_.Record(gen.SampleTemplate());
    history_.CloseInterval(Seconds(20));
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::TransactionManager tm_;
  workload::TemplateCatalog catalog_;
  workload::WorkloadHistory history_;
};

TEST_F(RepartitionerTest, StartBuildsRankedRegistry) {
  auto rp = MakeRepartitioner(std::make_unique<AfterAllScheduler>());
  WarmHistory();
  EXPECT_FALSE(rp->active());
  EXPECT_TRUE(rp->StartRepartitioning());
  EXPECT_TRUE(rp->active());
  EXPECT_EQ(rp->registry().size(), kTemplates);  // one txn per template
  EXPECT_EQ(rp->registry().total_ops(), kTemplates * 2);  // 2 moves each
  EXPECT_FALSE(rp->StartRepartitioning());  // already active
}

TEST_F(RepartitionerTest, ApplyAllRunsPlanToCompletion) {
  auto rp = MakeRepartitioner(std::make_unique<ApplyAllScheduler>());
  WarmHistory();
  ASSERT_TRUE(rp->StartRepartitioning());
  sim_.Run();
  EXPECT_TRUE(rp->Finished());
  EXPECT_DOUBLE_EQ(
      rp->RepRate(tm_.counters().repartition_ops_applied), 1.0);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
  // Every template is now collocated: a re-derived plan is empty.
  EXPECT_TRUE(rp->optimizer().DerivePlan(cluster_.routing_table()).empty());
}

TEST_F(RepartitionerTest, MaybeStartRespectsOptimizerEstimate) {
  repartition::OptimizerConfig opt;
  opt.utilization_threshold = 0.5;
  auto rp = MakeRepartitioner(std::make_unique<AfterAllScheduler>(), opt);
  // Quiet history: estimate 0, no trigger.
  history_.CloseInterval(Seconds(20));
  EXPECT_FALSE(rp->MaybeStartRepartitioning());
  // Heavy history: trigger.
  for (int i = 0; i < 60000; ++i) {
    history_.Record(static_cast<uint32_t>(i % kTemplates));
  }
  history_.CloseInterval(Seconds(20));
  EXPECT_TRUE(rp->MaybeStartRepartitioning());
  EXPECT_TRUE(rp->active());
}

TEST_F(RepartitionerTest, PiggybackCarrierCommitRetiresRepTxn) {
  auto rp = MakeRepartitioner(std::make_unique<PiggybackScheduler>());
  WarmHistory();
  ASSERT_TRUE(rp->StartRepartitioning());
  // Submit one instance of template 0: the pre-execution hook injects
  // template 0's migration.
  tm_.Submit(catalog_.Instantiate(0, 42));
  sim_.Run();
  const RepartitionTxn* rt = nullptr;
  for (uint64_t rid = 1; rid <= rp->registry().size(); ++rid) {
    if (rp->registry().Get(rid)->beneficiary_template == 0) {
      rt = rp->registry().Get(rid);
    }
  }
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->state, RepartitionTxn::State::kDone);
  EXPECT_EQ(tm_.counters().piggybacked_ops_applied, 2u);
  // The template's keys are now collocated at its home partition.
  for (storage::TupleKey key : catalog_.at(0).keys) {
    EXPECT_EQ(*cluster_.routing_table().GetPrimary(key),
              catalog_.at(0).home_partition);
  }
}

TEST_F(RepartitionerTest, AbortedCarrierIsStrippedAndResubmitted) {
  auto rp = MakeRepartitioner(std::make_unique<PiggybackScheduler>());
  WarmHistory();
  ASSERT_TRUE(rp->StartRepartitioning());
  // Make the first attempt fail: any participant of a transaction that
  // carries piggyback ops votes abort.
  int vetoes = 0;
  tm_.set_vote_abort_injector(
      [&](const txn::Transaction& t, uint32_t) {
        if (t.has_piggyback() && vetoes < 2) {
          ++vetoes;
          return true;
        }
        return false;
      });
  tm_.Submit(catalog_.Instantiate(0, 42));
  sim_.Run();
  // The carrier aborted once, was resubmitted without the piggyback, and
  // committed; the repartition txn reverted to pending.
  EXPECT_GE(vetoes, 1);
  EXPECT_EQ(rp->stripped_resubmissions(), 1u);
  EXPECT_EQ(tm_.counters().committed_normal, 1u);
  EXPECT_EQ(tm_.counters().aborted_normal, 1u);
  EXPECT_EQ(tm_.counters().piggyback_carrier_aborts, 1u);
  // A later instance retries the migration and succeeds.
  tm_.Submit(catalog_.Instantiate(0, 43));
  sim_.Run();
  EXPECT_EQ(tm_.counters().piggybacked_ops_applied, 2u);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(RepartitionerTest, VoteAbortedRepTxnIsRetriedByApplyAll) {
  auto rp = MakeRepartitioner(std::make_unique<ApplyAllScheduler>());
  WarmHistory();
  int vetoes = 0;
  tm_.set_vote_abort_injector([&](const txn::Transaction& t, uint32_t) {
    if (t.is_repartition && vetoes < 5) {
      ++vetoes;
      return true;
    }
    return false;
  });
  ASSERT_TRUE(rp->StartRepartitioning());
  sim_.Run();
  EXPECT_EQ(vetoes, 5);  // vetoes are per participant, not per txn
  EXPECT_TRUE(rp->Finished());  // retries drove the plan home
  EXPECT_GE(tm_.counters().aborted_repartition, 1u);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(RepartitionerTest, RepRateClampedAndMonotonic) {
  auto rp = MakeRepartitioner(std::make_unique<ApplyAllScheduler>());
  WarmHistory();
  EXPECT_DOUBLE_EQ(rp->RepRate(0), 0.0);  // inactive
  ASSERT_TRUE(rp->StartRepartitioning());
  EXPECT_DOUBLE_EQ(rp->RepRate(0), 0.0);
  EXPECT_DOUBLE_EQ(rp->RepRate(rp->registry().total_ops()), 1.0);
  EXPECT_DOUBLE_EQ(rp->RepRate(rp->registry().total_ops() + 100), 1.0);
}

TEST_F(RepartitionerTest, HistoryRecordedViaInterception) {
  auto rp = MakeRepartitioner(std::make_unique<AfterAllScheduler>());
  auto t = catalog_.Instantiate(7, 1);
  rp->InterceptNormalSubmission(t.get());
  rp->InterceptNormalSubmission(t.get());
  history_.CloseInterval(Seconds(1));
  EXPECT_DOUBLE_EQ(history_.FrequencyOf(7), 2.0);
}

TEST_F(RepartitionerTest, NoPiggybackBeforePlanActive) {
  auto rp = MakeRepartitioner(std::make_unique<PiggybackScheduler>());
  auto t = catalog_.Instantiate(0, 1);
  rp->OnBeforeExecute(t.get());
  EXPECT_FALSE(t->has_piggyback());
}

}  // namespace
}  // namespace soap::core
