// soap::replica end-to-end through the engine: the planner creates copies
// of shared read-mostly keys, reads are served by replicas, a primary
// crash promotes surviving copies after the failure-detector delay, a
// restarted node catches up, and — the byte-identity contract — enabling
// the subsystem without ever creating a replica leaves the event stream
// of a replication-free run untouched.

#include <gtest/gtest.h>

#include "src/engine/experiment.h"

namespace soap::engine {
namespace {

// Small hub workload: 10 hot templates are shared reference data read by
// a third of all transactions, from every partition. These keys are
// read-only, so the planner replicates them instead of migrating.
ExperimentConfig HubConfig() {
  ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0);
  config.workload_options.spec.num_templates = 200;
  config.workload_options.spec.num_keys = 4'000;
  config.workload_options.spec.write_fraction = 0.1;
  workload::DriftPhase hub;
  hub.start_interval = 0;
  hub.zipf_s = config.workload_options.spec.zipf_s;
  hub.pair_fraction = 0.35;
  hub.pair_hub = 10;
  config.workload_options.spec.phases.push_back(hub);
  config.workload_options.utilization = 0.65;
  config.warmup_intervals = 2;
  config.measured_intervals = 10;
  config.deployment.strategy = SchedulingStrategy::kHybrid;
  config.seed = 7;
  config.planner_options.enabled = true;
  config.replicas.enabled = true;
  config.replicas.max_copies = config.cluster.num_nodes;
  return config;
}

TEST(ReplicaManagerTest, PlannerCreatesCopiesAndReadsUseThem) {
  ExperimentResult r = Experiment(HubConfig()).Run();
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.planner_stats.replica_creates_emitted, 0u);
  EXPECT_GT(r.replica_count_final, 0u);
  EXPECT_GT(r.replica_reads, 0u);
  EXPECT_GT(r.reads_routed, r.replica_reads);
}

TEST(ReplicaManagerTest, PrimaryCrashPromotesSurvivingCopies) {
  ExperimentConfig config = HubConfig();
  // Crash once replicas exist (plans deploy from interval 2 at 20s
  // intervals); the node stays down past the drain so the run ends with
  // the promoted routing state.
  config.fault_options.spec = "crash:node=2,at=150s,down=30s";
  ExperimentResult r = Experiment(config).Run();
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_EQ(r.faults_crashes, 1u);
  EXPECT_GT(r.replica_stats.promotions, 0u);
  EXPECT_GE(r.replica_stats.failovers, 1u);
  // The restarted node swept its stale copies back to freshness.
  EXPECT_GT(r.replica_stats.catchup_refreshed, 0u);
}

TEST(ReplicaManagerTest, CrashWithoutReplicasSchedulesNoReplicaEvents) {
  ExperimentConfig config = HubConfig();
  config.planner_options.enabled = false;  // nothing ever proposes a copy
  config.fault_options.spec = "crash:node=2,at=150s,down=30s";
  ExperimentResult r = Experiment(config).Run();
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_EQ(r.replica_count_final, 0u);
  EXPECT_EQ(r.replica_stats.promotions, 0u);
  EXPECT_EQ(r.replica_stats.failovers, 0u);
  EXPECT_EQ(r.replica_stats.catchup_refreshed, 0u);
  EXPECT_EQ(r.replica_reads, 0u);
}

TEST(ReplicaManagerTest, EnabledButUnusedIsByteIdenticalToDisabled) {
  // With the planner off no replica is ever created, so every
  // replica-aware branch must degenerate to the replication-free path:
  // same event count, same commits, same virtual end time.
  ExperimentConfig off = HubConfig();
  off.planner_options.enabled = false;
  off.replicas.enabled = false;
  ExperimentConfig on = HubConfig();
  on.planner_options.enabled = false;
  on.replicas.enabled = true;
  ExperimentResult a = Experiment(off).Run();
  ExperimentResult b = Experiment(on).Run();
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.counters.committed_normal, b.counters.committed_normal);
  EXPECT_EQ(a.counters.aborted_normal, b.counters.aborted_normal);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(ReplicaManagerTest, PromotionRacesInFlightReplicaCreate) {
  // Crash one second after a plan-generation boundary (plans deploy at
  // 20s intervals from interval 2), so the failure-detector sweep promotes
  // surviving copies while kReplicaCreate repartition transactions of the
  // newest generation are still in flight to and from the crashed node.
  // Those in-flight creates must either land on a live placement or abort
  // with the crash — never deploy a copy under the dead primary — and the
  // checker's ownership/coherence sweeps prove it.
  ExperimentConfig config = HubConfig();
  config.fault_options.spec = "crash:node=2,at=81s,down=30s";
  config.check.enabled = true;
  ExperimentResult r = Experiment(config).Run();
  EXPECT_EQ(r.faults_crashes, 1u);
  EXPECT_TRUE(r.audit.ok()) << r.audit.ToString();
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.planner_stats.replica_creates_emitted, 0u);
  EXPECT_GT(r.replica_stats.promotions, 0u);
  EXPECT_TRUE(r.check_report.ok()) << r.check_report.ToString();
  EXPECT_GT(r.invariant_checks, 0u);
}

TEST(ReplicaManagerTest, DeterministicAcrossRuns) {
  ExperimentConfig config = HubConfig();
  config.fault_options.spec = "crash:node=2,at=150s,down=30s";
  ExperimentResult a = Experiment(config).Run();
  ExperimentResult b = Experiment(config).Run();
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.replica_stats.promotions, b.replica_stats.promotions);
  EXPECT_EQ(a.replica_stats.catchup_refreshed,
            b.replica_stats.catchup_refreshed);
  EXPECT_EQ(a.replica_reads, b.replica_reads);
  EXPECT_EQ(a.end_time, b.end_time);
}

}  // namespace
}  // namespace soap::engine
