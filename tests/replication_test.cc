// Tests for the replica planner and the end-to-end HA replication path:
// plans through the repartitioner, replica-aware routing, write-through
// consistency, and multi-round repartitioning (FinishRound).

#include "src/repartition/replication.h"

#include <gtest/gtest.h>

#include <set>

#include "src/core/basic_schedulers.h"
#include "src/core/repartitioner.h"

namespace soap {
namespace {

using repartition::RepartitionOpType;
using repartition::ReplicaPlanner;

class ReplicationTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kKeys = 100;

  ReplicationTest() : ReplicationTest(Config()) {}

  explicit ReplicationTest(const cluster::ClusterConfig& config)
      : cluster_(&sim_, config),
        tm_(&cluster_),
        catalog_(Spec(), cluster_.num_nodes()),
        history_(Spec().num_templates, 5),
        planner_(cluster_.num_nodes()) {
    for (storage::TupleKey k = 0; k < kKeys; ++k) {
      storage::Tuple t;
      t.key = k;
      t.content = static_cast<int64_t>(k);
      EXPECT_TRUE(cluster_.LoadTuple(t, catalog_.InitialPartitionOf(k)).ok());
    }
  }

  static cluster::ClusterConfig Config() {
    cluster::ClusterConfig c;
    c.num_keys = kKeys;
    c.network.jitter = 0;
    return c;
  }

  static workload::WorkloadSpec Spec() {
    workload::WorkloadSpec s;
    s.num_templates = 10;
    s.num_keys = kKeys;
    s.alpha = 0.0;  // already collocated; replication is the only work
    s.seed = 4;
    return s;
  }

  core::Repartitioner MakeRepartitioner() {
    core::Repartitioner rp(&cluster_, &tm_, &catalog_, &history_,
                           std::make_unique<core::ApplyAllScheduler>());
    return rp;
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::TransactionManager tm_;
  workload::TemplateCatalog catalog_;
  workload::WorkloadHistory history_;
  ReplicaPlanner planner_;
};

TEST_F(ReplicationTest, PlanCreatesMissingCopies) {
  auto plan = planner_.PlanReplication(cluster_.routing_table(),
                                       {0, 1, 2}, /*factor=*/3);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->size(), 6u);  // 2 new copies per key
  for (const auto& op : plan->ops) {
    EXPECT_EQ(op.kind, RepartitionOpType::kNewReplicaCreation);
    EXPECT_NE(op.target_partition,
              *cluster_.routing_table().GetPrimary(op.key));
  }
}

TEST_F(ReplicationTest, PlanTargetsDistinctPartitionsPerKey) {
  auto plan = planner_.PlanReplication(cluster_.routing_table(), {7},
                                       /*factor=*/5);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->size(), 4u);
  std::set<uint32_t> targets;
  for (const auto& op : plan->ops) targets.insert(op.target_partition);
  EXPECT_EQ(targets.size(), 4u);
}

TEST_F(ReplicationTest, FactorBeyondPartitionsRejected) {
  EXPECT_FALSE(
      planner_.PlanReplication(cluster_.routing_table(), {0}, 6).ok());
  EXPECT_FALSE(
      planner_.PlanDereplication(cluster_.routing_table(), {0}, 0).ok());
}

TEST_F(ReplicationTest, UnknownKeyRejected) {
  EXPECT_FALSE(
      planner_.PlanReplication(cluster_.routing_table(), {9999}, 2).ok());
}

TEST_F(ReplicationTest, EndToEndReplicationThroughScheduler) {
  core::Repartitioner rp = MakeRepartitioner();
  tm_.set_completion_callback(
      [&rp](const txn::Transaction& t) { rp.OnTxnComplete(t); });
  auto plan = planner_.PlanReplication(cluster_.routing_table(),
                                       {0, 1, 2, 3}, /*factor=*/2);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(rp.StartRepartitioningWithPlan(*plan));
  sim_.Run();
  EXPECT_TRUE(rp.Finished());
  for (storage::TupleKey k : {0ULL, 1ULL, 2ULL, 3ULL}) {
    EXPECT_EQ(cluster_.routing_table().GetPlacement(k)->copy_count(), 2u);
  }
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(ReplicationTest, WritesKeepReplicasIdentical) {
  core::Repartitioner rp = MakeRepartitioner();
  tm_.set_completion_callback(
      [&rp](const txn::Transaction& t) { rp.OnTxnComplete(t); });
  auto plan =
      planner_.PlanReplication(cluster_.routing_table(), {0}, /*factor=*/3);
  ASSERT_TRUE(rp.StartRepartitioningWithPlan(*plan));
  sim_.Run();

  auto writer = std::make_unique<txn::Transaction>();
  txn::Operation w;
  w.kind = txn::OpKind::kWrite;
  w.key = 0;
  w.write_value = 4242;
  writer->ops = {w};
  tm_.Submit(std::move(writer));
  sim_.Run();

  Result<router::Placement> placement =
      cluster_.routing_table().GetPlacement(0);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(cluster_.storage(placement->primary).Read(0)->content, 4242);
  for (uint32_t rep : placement->replicas) {
    EXPECT_EQ(cluster_.storage(rep).Read(0)->content, 4242);
  }
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(ReplicationTest, DereplicationTrimsBackDown) {
  core::Repartitioner rp = MakeRepartitioner();
  tm_.set_completion_callback(
      [&rp](const txn::Transaction& t) { rp.OnTxnComplete(t); });
  auto up =
      planner_.PlanReplication(cluster_.routing_table(), {0, 1}, 3);
  ASSERT_TRUE(rp.StartRepartitioningWithPlan(*up));
  sim_.Run();
  ASSERT_TRUE(rp.FinishRound());

  auto down =
      planner_.PlanDereplication(cluster_.routing_table(), {0, 1}, 1);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->size(), 4u);
  ASSERT_TRUE(rp.StartRepartitioningWithPlan(*down));
  sim_.Run();
  EXPECT_TRUE(rp.Finished());
  for (storage::TupleKey k : {0ULL, 1ULL}) {
    EXPECT_EQ(cluster_.routing_table().GetPlacement(k)->copy_count(), 1u);
  }
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(ReplicationTest, FinishRoundGatesOnCompletion) {
  core::Repartitioner rp = MakeRepartitioner();
  EXPECT_FALSE(rp.FinishRound());  // nothing active
  auto plan =
      planner_.PlanReplication(cluster_.routing_table(), {0}, 2);
  ASSERT_TRUE(rp.StartRepartitioningWithPlan(*plan));
  EXPECT_FALSE(rp.FinishRound());  // still in flight
  tm_.set_completion_callback(
      [&rp](const txn::Transaction& t) { rp.OnTxnComplete(t); });
  // The ApplyAll scheduler already submitted before the callback was
  // registered; re-run via a fresh round instead: drain, then mark done.
  sim_.Run();
  // Completion events were missed (no callback at submit time), so drive
  // the registry directly for this gating test.
  rp.mutable_registry().MarkDone(1);
  EXPECT_TRUE(rp.FinishRound());
  EXPECT_FALSE(rp.active());
}

TEST_F(ReplicationTest, ReplicationBalancesAcrossPartitions) {
  std::vector<storage::TupleKey> keys;
  for (storage::TupleKey k = 0; k < 50; ++k) keys.push_back(k);
  auto plan =
      planner_.PlanReplication(cluster_.routing_table(), keys, 2);
  ASSERT_TRUE(plan.ok());
  uint64_t per_partition[5] = {0, 0, 0, 0, 0};
  for (const auto& op : plan->ops) per_partition[op.target_partition]++;
  for (uint64_t c : per_partition) EXPECT_LE(c, 20u);  // no pile-up
}

// cc-mode matrix: replication correctness holds under MVCC too. Write
// fan-out keeps replicas identical, and snapshots taken before or after a
// kReplicaCreate read the same values — replica creation copies state, it
// never installs a version.
class MvccReplicationTest : public ReplicationTest {
 protected:
  MvccReplicationTest() : ReplicationTest(MvccConfig()) {}

  static cluster::ClusterConfig MvccConfig() {
    cluster::ClusterConfig c = Config();
    c.isolation = cluster::IsolationLevel::kSerializable;
    c.cc = mvcc::ConcurrencyControl::kMvcc;
    return c;
  }
};

TEST_F(MvccReplicationTest, WritesKeepReplicasIdenticalUnderMvcc) {
  core::Repartitioner rp = MakeRepartitioner();
  tm_.set_completion_callback(
      [&rp](const txn::Transaction& t) { rp.OnTxnComplete(t); });
  auto plan =
      planner_.PlanReplication(cluster_.routing_table(), {0}, /*factor=*/3);
  ASSERT_TRUE(rp.StartRepartitioningWithPlan(*plan));
  sim_.Run();
  // Replica creation copies the tuple; it is not a transactional write, so
  // no version chain appears for key 0.
  EXPECT_EQ(cluster_.versions().ChainLength(0), 0u);
  const SimTime before_write = sim_.Now();

  auto writer = std::make_unique<txn::Transaction>();
  txn::Operation w;
  w.kind = txn::OpKind::kWrite;
  w.key = 0;
  w.write_value = 4242;
  writer->ops = {w};
  tm_.Submit(std::move(writer));
  sim_.Run();

  Result<router::Placement> placement =
      cluster_.routing_table().GetPlacement(0);
  ASSERT_TRUE(placement.ok());
  ASSERT_EQ(placement->copy_count(), 3u);
  EXPECT_EQ(cluster_.storage(placement->primary).Read(0)->content, 4242);
  for (uint32_t rep : placement->replicas) {
    EXPECT_EQ(cluster_.storage(rep).Read(0)->content, 4242);
  }
  // The committed write installed exactly one version; a snapshot from
  // before the write still reads the base, one from after reads 4242.
  EXPECT_EQ(cluster_.versions().ChainLength(0), 1u);
  EXPECT_EQ(cluster_.versions().ReadAsOf(0, before_write).writer, 0u);
  EXPECT_EQ(cluster_.versions().ReadAsOf(0, sim_.Now() + 1).value, 4242);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(MvccReplicationTest, EndToEndReplicationStaysConsistentUnderMvcc) {
  core::Repartitioner rp = MakeRepartitioner();
  tm_.set_completion_callback(
      [&rp](const txn::Transaction& t) { rp.OnTxnComplete(t); });
  auto plan = planner_.PlanReplication(cluster_.routing_table(),
                                       {0, 1, 2, 3}, /*factor=*/2);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(rp.StartRepartitioningWithPlan(*plan));
  sim_.Run();
  EXPECT_TRUE(rp.Finished());
  for (storage::TupleKey k : {0ULL, 1ULL, 2ULL, 3ULL}) {
    EXPECT_EQ(cluster_.routing_table().GetPlacement(k)->copy_count(), 2u);
  }
  // Repartition transactions hold no snapshots once drained.
  EXPECT_EQ(cluster_.snapshots().active_count(), 0u);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

}  // namespace
}  // namespace soap
