#include "src/obs/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/json.h"

// Golden inputs: a checked-in mini run (tests/data/mini.*.jsonl) written
// by hand to cover every audit record type, including the
// dropped_by_cap-overrides-accept case the explain logic must get right.
#ifndef SOAP_TEST_DATA_DIR
#define SOAP_TEST_DATA_DIR "tests/data"
#endif

namespace soap::obs::report {
namespace {

std::vector<json::Value> LoadMini(const char* file) {
  Result<std::vector<json::Value>> loaded =
      LoadJsonlFile(std::string(SOAP_TEST_DATA_DIR) + "/" + file);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return loaded.ok() ? std::move(loaded).value()
                     : std::vector<json::Value>{};
}

TEST(ReportValidateTest, MiniRunPassesBothValidators) {
  const std::vector<json::Value> audit = LoadMini("mini.audit.jsonl");
  const std::vector<json::Value> timeline = LoadMini("mini.timeline.jsonl");
  ASSERT_FALSE(audit.empty());
  ASSERT_FALSE(timeline.empty());
  EXPECT_TRUE(ValidateAudit(audit).ok()) << ValidateAudit(audit).ToString();
  EXPECT_TRUE(ValidateTimeline(timeline).ok())
      << ValidateTimeline(timeline).ToString();
}

TEST(ReportValidateTest, RejectsBadStreams) {
  // Wrong schema version.
  std::vector<json::Value> records;
  records.push_back(
      *json::Parse(R"({"v":9,"t_us":0,"type":"run_meta","seed":1,)"
                   R"("strategy":"x","nodes":1,"keys":1})"));
  EXPECT_FALSE(ValidateAudit(records).ok());

  // Unknown record type.
  records.clear();
  records.push_back(*json::Parse(
      R"({"v":1,"t_us":0,"type":"mystery"})"));
  EXPECT_FALSE(ValidateAudit(records).ok());

  // Missing required field (replan without plan).
  records = LoadMini("mini.audit.jsonl");
  records.push_back(
      *json::Parse(R"({"v":1,"t_us":999999999,"type":"replan","cycle":9,)"
                   R"("outcome":"emitted"})"));
  EXPECT_FALSE(ValidateAudit(records).ok());

  // Virtual time going backwards.
  records = LoadMini("mini.audit.jsonl");
  records.push_back(
      *json::Parse(R"({"v":1,"t_us":1,"type":"promotion","node":0,)"
                   R"("promoted":0,"failovers":0})"));
  EXPECT_FALSE(ValidateAudit(records).ok());

  EXPECT_FALSE(ValidateAudit({}).ok());
}

TEST(ReportValidateTest, AcceptsCheckerRecordKinds) {
  // The audit records soap::check emits (per-violation `invariant` lines
  // and the end-of-run `check_summary`) must pass the schema validator.
  std::vector<json::Value> records = LoadMini("mini.audit.jsonl");
  records.push_back(*json::Parse(
      R"({"v":1,"t_us":100000000,"type":"invariant",)"
      R"("check":"ownership","detail":"key 7 stored but unrouted"})"));
  records.push_back(*json::Parse(
      R"({"v":1,"t_us":100000000,"type":"check_summary","violations":1,)"
      R"("txns":5000,"reads":900,"ww":100,"wr":20,"rw":3,"rw_cycles":0,)"
      R"("invariant_checks":40,"breaks_fired":0,"ok":false})"));
  EXPECT_TRUE(ValidateAudit(records).ok()) << ValidateAudit(records).ToString();
}

TEST(ReportLoadTest, StrictLoaderRejectsTruncatedFinalLine) {
  Result<std::vector<json::Value>> loaded = LoadJsonlFile(
      std::string(SOAP_TEST_DATA_DIR) + "/truncated.audit.jsonl");
  EXPECT_FALSE(loaded.ok());
}

TEST(ReportLoadTest, TolerantLoaderDropsTruncatedFinalLine) {
  bool truncated = false;
  Result<std::vector<json::Value>> loaded = LoadJsonlFile(
      std::string(SOAP_TEST_DATA_DIR) + "/truncated.audit.jsonl", &truncated);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(truncated);
  // The two intact records survive and still validate: a writer that died
  // mid-record loses only its final line.
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->back().GetString("type"), "promotion");
  EXPECT_TRUE(ValidateAudit(*loaded).ok()) << ValidateAudit(*loaded).ToString();
}

TEST(ReportLoadTest, TolerantLoaderLeavesCleanFilesAlone) {
  bool truncated = true;
  Result<std::vector<json::Value>> loaded = LoadJsonlFile(
      std::string(SOAP_TEST_DATA_DIR) + "/mini.audit.jsonl", &truncated);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(truncated);
  EXPECT_EQ(loaded->size(), LoadMini("mini.audit.jsonl").size());
}

TEST(ReportLoadTest, TolerantLoaderStillRejectsMidFileCorruption) {
  // Only the FINAL line gets the benefit of the doubt.
  const std::string path =
      ::testing::TempDir() + "report_test_midcorrupt.jsonl";
  std::ofstream out(path);
  out << R"({"v":1,"t_us":0,"type":"run_meta","seed":1,"strategy":"x",)"
      << R"("nodes":1,"keys":1})" << "\n";
  out << R"({"v":1,"t_us":1,"type":"promo)" << "\n";  // corrupt, not final
  out << R"({"v":1,"t_us":2,"type":"promotion","node":0,"promoted":1,)"
      << R"("failovers":1})" << "\n";
  out.close();
  bool truncated = false;
  Result<std::vector<json::Value>> loaded = LoadJsonlFile(path, &truncated);
  EXPECT_FALSE(loaded.ok());
  EXPECT_FALSE(truncated);
  std::remove(path.c_str());
}

TEST(ReportDecisionsTest, CapDropOverridesEarlierAccept) {
  const std::vector<json::Value> audit = LoadMini("mini.audit.jsonl");
  const std::vector<OpDecision> decisions = CollectDecisions(audit, 2);
  ASSERT_EQ(decisions.size(), 4u);  // 5 plan_op records, 1 is an override

  // key=11 accepted outright.
  EXPECT_EQ(decisions[0].key, 11u);
  EXPECT_TRUE(decisions[0].accepted);
  EXPECT_EQ(decisions[0].reason, "migrate_to_cluster");
  EXPECT_EQ(decisions[0].heat, 40u);
  EXPECT_EQ(decisions[0].reads, 30u);
  EXPECT_EQ(decisions[0].writes, 10u);

  // key=14 was accepted by the cost model, then dropped by the per-plan
  // cap; the final decision must be the rejection.
  const OpDecision& capped = decisions[3];
  EXPECT_EQ(capped.key, 14u);
  EXPECT_FALSE(capped.accepted);
  EXPECT_EQ(capped.reason, "dropped_by_cap");
  EXPECT_TRUE(capped.capped);
}

TEST(ReportExplainTest, NamesReasonAndCostInputsForEveryOp) {
  const std::vector<json::Value> audit = LoadMini("mini.audit.jsonl");
  const std::string text = Explain(audit, 1);
  EXPECT_NE(text.find("plan 1 (cycle 2"), std::string::npos) << text;
  EXPECT_NE(text.find("120 vertices"), std::string::npos);
  // Every candidate with its reason and cost inputs.
  EXPECT_NE(text.find("migrate_to_cluster"), std::string::npos);
  EXPECT_NE(text.find("below_min_heat"), std::string::npos);
  EXPECT_NE(text.find("replica_split_reader"), std::string::npos);
  EXPECT_NE(text.find("dropped_by_cap"), std::string::npos);
  EXPECT_NE(text.find("heat=40 reads=30 writes=10"), std::string::npos);
  // Lifecycle joined via the plan id.
  EXPECT_NE(text.find("submits=1"), std::string::npos);
  EXPECT_NE(text.find("piggybacks=1"), std::string::npos);
  EXPECT_NE(text.find("retries=1"), std::string::npos);
  EXPECT_NE(text.find("applies=2"), std::string::npos);
  EXPECT_NE(text.find("lock_timeout=1"), std::string::npos);
}

TEST(ReportExplainTest, UnknownPlanListsEmittedOnes) {
  const std::vector<json::Value> audit = LoadMini("mini.audit.jsonl");
  const std::string text = Explain(audit, 42);
  EXPECT_NE(text.find("plan 42 not found"), std::string::npos) << text;
  EXPECT_NE(text.find("emitted plans: 1"), std::string::npos) << text;
}

TEST(ReportSummaryTest, DigestsWholeRun) {
  RunData run;
  run.audit = LoadMini("mini.audit.jsonl");
  run.timeline = LoadMini("mini.timeline.jsonl");
  const std::string text = Summary(run);
  EXPECT_NE(text.find("seed=7"), std::string::npos) << text;
  EXPECT_NE(text.find("planner=on"), std::string::npos);
  EXPECT_NE(text.find("emitted=1"), std::string::npos);
  EXPECT_NE(text.find("skipped_small=1"), std::string::npos);
  EXPECT_NE(text.find("promotions=4"), std::string::npos);
  EXPECT_NE(text.find("catchup_refreshed=3"), std::string::npos);
  EXPECT_NE(text.find("3 ticks"), std::string::npos);
  EXPECT_NE(text.find("peak queue=12"), std::string::npos);
  EXPECT_NE(text.find("drained=yes"), std::string::npos);
}

TEST(ReportHtmlTest, SelfContainedWithSparklinesAndPlanTables) {
  RunData run;
  run.audit = LoadMini("mini.audit.jsonl");
  run.timeline = LoadMini("mini.timeline.jsonl");
  const std::string html = HtmlReport(run);
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);          // sparklines
  EXPECT_NE(html.find("Plan 1"), std::string::npos);        // explain table
  EXPECT_NE(html.find("dropped_by_cap"), std::string::npos);
  EXPECT_NE(html.find("partition 2"), std::string::npos);
  // No external assets: everything inline.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

}  // namespace
}  // namespace soap::obs::report
