// Interval/exception behaviour of the range-based RoutingTable: bulk range
// assignment, block-range split and coalesce at boundary keys, exception
// absorption, O(1) counters, ForEachReplicated under mutation, and a
// randomized differential against a dense per-key reference model.

#include "src/router/routing_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <random>
#include <vector>

namespace soap::router {
namespace {

TEST(RoutingIntervalTest, RoundRobinBulkAssign) {
  RoutingTable rt(1000);
  ASSERT_TRUE(rt.AssignRoundRobin(0, 1000, 4).ok());
  EXPECT_EQ(rt.range_count(), 1u);
  EXPECT_EQ(rt.exception_count(), 0u);
  for (uint64_t k : {0ull, 1ull, 5ull, 999ull}) {
    EXPECT_EQ(*rt.GetPrimary(k), static_cast<PartitionId>(k % 4));
  }
  EXPECT_EQ(rt.CountPrimaries(0), 250u);
  EXPECT_EQ(rt.CountPrimaries(3), 250u);
  EXPECT_EQ(rt.CountReplicas(0), 0u);
}

TEST(RoutingIntervalTest, BlockRangeAssign) {
  RoutingTable rt(100);
  ASSERT_TRUE(rt.AssignRange(0, 50, 1).ok());
  ASSERT_TRUE(rt.AssignRange(50, 100, 2).ok());
  EXPECT_EQ(rt.range_count(), 2u);
  EXPECT_EQ(*rt.GetPrimary(0), 1u);
  EXPECT_EQ(*rt.GetPrimary(49), 1u);
  EXPECT_EQ(*rt.GetPrimary(50), 2u);
  EXPECT_EQ(rt.CountPrimaries(1), 50u);
  EXPECT_EQ(rt.CountPrimaries(2), 50u);
}

TEST(RoutingIntervalTest, OverlappingOrOutOfBoundsRangesRejected) {
  RoutingTable rt(100);
  ASSERT_TRUE(rt.AssignRange(10, 20, 0).ok());
  EXPECT_FALSE(rt.AssignRange(15, 25, 1).ok());  // overlaps tail
  EXPECT_FALSE(rt.AssignRange(5, 11, 1).ok());   // overlaps head
  EXPECT_FALSE(rt.AssignRange(0, 101, 1).ok());  // past num_keys
  EXPECT_FALSE(rt.AssignRange(30, 30, 1).ok());  // empty
  EXPECT_TRUE(rt.AssignRange(20, 30, 1).ok());   // adjacent is fine
}

TEST(RoutingIntervalTest, MigrateAtFirstKeySplitsBlockRange) {
  RoutingTable rt(100);
  ASSERT_TRUE(rt.AssignRange(0, 100, 1).ok());
  ASSERT_TRUE(rt.Migrate(0, 1, 2).ok());
  EXPECT_EQ(*rt.GetPrimary(0), 2u);
  EXPECT_EQ(*rt.GetPrimary(1), 1u);
  // Boundary migration restructures the range instead of leaving a point
  // exception behind.
  EXPECT_EQ(rt.exception_count(), 0u);
  EXPECT_EQ(rt.range_count(), 2u);
  EXPECT_EQ(rt.CountPrimaries(1), 99u);
  EXPECT_EQ(rt.CountPrimaries(2), 1u);

  // Migrating back coalesces to a single range again.
  ASSERT_TRUE(rt.Migrate(0, 2, 1).ok());
  EXPECT_EQ(rt.range_count(), 1u);
  EXPECT_EQ(rt.exception_count(), 0u);
  EXPECT_EQ(rt.CountPrimaries(1), 100u);
}

TEST(RoutingIntervalTest, MigrateAtLastKeySplitsBlockRange) {
  RoutingTable rt(100);
  ASSERT_TRUE(rt.AssignRange(0, 100, 1).ok());
  ASSERT_TRUE(rt.Migrate(99, 1, 3).ok());
  EXPECT_EQ(*rt.GetPrimary(99), 3u);
  EXPECT_EQ(*rt.GetPrimary(98), 1u);
  EXPECT_EQ(rt.exception_count(), 0u);
  EXPECT_EQ(rt.range_count(), 2u);

  ASSERT_TRUE(rt.Migrate(99, 3, 1).ok());
  EXPECT_EQ(rt.range_count(), 1u);
  EXPECT_EQ(rt.CountPrimaries(1), 100u);
}

TEST(RoutingIntervalTest, BoundarySplitsMergeWithEqualOwnerNeighbors) {
  RoutingTable rt(100);
  ASSERT_TRUE(rt.AssignRange(0, 50, 1).ok());
  ASSERT_TRUE(rt.AssignRange(50, 100, 2).ok());
  // Key 50 is the first key of partition 2's range; moving it to 1
  // extends partition 1's neighboring block instead of minting a range.
  ASSERT_TRUE(rt.Migrate(50, 2, 1).ok());
  EXPECT_EQ(*rt.GetPrimary(50), 1u);
  EXPECT_EQ(rt.exception_count(), 0u);
  EXPECT_EQ(rt.range_count(), 2u);
  EXPECT_EQ(rt.CountPrimaries(1), 51u);
  EXPECT_EQ(rt.CountPrimaries(2), 49u);
}

TEST(RoutingIntervalTest, InteriorMigrationIsAnExceptionAbsorbedOnReturn) {
  RoutingTable rt(100);
  ASSERT_TRUE(rt.AssignRange(0, 100, 1).ok());
  ASSERT_TRUE(rt.Migrate(42, 1, 3).ok());
  EXPECT_EQ(*rt.GetPrimary(42), 3u);
  EXPECT_EQ(rt.exception_count(), 1u);
  EXPECT_EQ(rt.range_count(), 1u);
  EXPECT_EQ(rt.CountPrimaries(1), 99u);
  EXPECT_EQ(rt.CountPrimaries(3), 1u);
  // Returning home absorbs the exception back into the range.
  ASSERT_TRUE(rt.Migrate(42, 3, 1).ok());
  EXPECT_EQ(rt.exception_count(), 0u);
  EXPECT_EQ(rt.CountPrimaries(1), 100u);
  EXPECT_EQ(rt.CountPrimaries(3), 0u);
}

TEST(RoutingIntervalTest, RoundRobinMigrationsUseExceptions) {
  RoutingTable rt(100);
  ASSERT_TRUE(rt.AssignRoundRobin(0, 100, 4).ok());
  // Round-robin ranges never restructure — even boundary keys become
  // exceptions (there is no contiguous block to split).
  ASSERT_TRUE(rt.Migrate(0, 0, 3).ok());
  EXPECT_EQ(rt.exception_count(), 1u);
  EXPECT_EQ(rt.range_count(), 1u);
  EXPECT_EQ(*rt.GetPrimary(0), 3u);
  // Returning to the arithmetic owner absorbs.
  ASSERT_TRUE(rt.Migrate(0, 3, 0).ok());
  EXPECT_EQ(rt.exception_count(), 0u);
}

TEST(RoutingIntervalTest, PromoteOnExceptionKey) {
  RoutingTable rt(100);
  ASSERT_TRUE(rt.AssignRoundRobin(0, 100, 4).ok());
  // Key 5 (base owner 1) migrates to 3, then gets a replica on 2.
  ASSERT_TRUE(rt.Migrate(5, 1, 3).ok());
  ASSERT_TRUE(rt.AddReplica(5, 2).ok());
  EXPECT_EQ(rt.exception_count(), 1u);
  ASSERT_TRUE(rt.Promote(5, 2).ok());
  Result<Placement> p = rt.GetPlacement(5);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->primary, 2u);
  ASSERT_EQ(p->replicas.size(), 1u);
  EXPECT_EQ(p->replicas[0], 3u);  // old primary demoted in place
  EXPECT_EQ(rt.CountPrimaries(2), 26u);  // 25 round-robin + the exception
  EXPECT_EQ(rt.CountReplicas(3), 1u);
  EXPECT_EQ(rt.CountReplicas(2), 0u);
}

TEST(RoutingIntervalTest, PromoteBackToBaseOwnerAbsorbsException) {
  RoutingTable rt(100);
  ASSERT_TRUE(rt.AssignRoundRobin(0, 100, 4).ok());
  // Key 7's base owner is 3. Move it away, replicate it back on 3, then
  // promote 3: the primary returns to the arithmetic owner and the
  // exception disappears.
  ASSERT_TRUE(rt.Migrate(7, 3, 0).ok());
  ASSERT_TRUE(rt.AddReplica(7, 3).ok());
  EXPECT_EQ(rt.exception_count(), 1u);
  ASSERT_TRUE(rt.Promote(7, 3).ok());
  EXPECT_EQ(*rt.GetPrimary(7), 3u);
  EXPECT_EQ(rt.exception_count(), 0u);
  Result<Placement> p = rt.GetPlacement(7);
  ASSERT_EQ(p->replicas.size(), 1u);
  EXPECT_EQ(p->replicas[0], 0u);
}

TEST(RoutingIntervalTest, AssignOverExistingExceptionsAbsorbsMatching) {
  RoutingTable rt(100);
  // Point placements before any range exists live as exceptions.
  ASSERT_TRUE(rt.SetPrimary(3, 1).ok());
  ASSERT_TRUE(rt.SetPrimary(4, 2).ok());
  EXPECT_EQ(rt.exception_count(), 2u);
  // Installing a block range over them: the key already on the range
  // owner is absorbed, the other stays authoritative.
  ASSERT_TRUE(rt.AssignRange(0, 10, 1).ok());
  EXPECT_EQ(rt.exception_count(), 1u);
  EXPECT_EQ(*rt.GetPrimary(3), 1u);
  EXPECT_EQ(*rt.GetPrimary(4), 2u);
  EXPECT_EQ(*rt.GetPrimary(7), 1u);
  EXPECT_EQ(rt.CountPrimaries(1), 9u);
  EXPECT_EQ(rt.CountPrimaries(2), 1u);
}

TEST(RoutingIntervalTest, ForEachReplicatedSeesMutationsBeyondCursor) {
  RoutingTable rt(100);
  ASSERT_TRUE(rt.AssignRoundRobin(0, 100, 4).ok());
  for (uint64_t k : {3ull, 10ull, 20ull}) {
    ASSERT_TRUE(rt.AddReplica(k, static_cast<PartitionId>((k + 1) % 4)).ok());
  }
  std::vector<storage::TupleKey> visited;
  rt.ForEachReplicated([&](storage::TupleKey key, const Placement& p) {
    visited.push_back(key);
    EXPECT_EQ(p.replicas.size(), 1u);
    if (key == 3) {
      // Mutations beyond the cursor take effect for the rest of the
      // sweep: 20 loses its replica, 50 gains one.
      ASSERT_TRUE(rt.RemoveReplica(20, 1).ok());
      ASSERT_TRUE(rt.AddReplica(50, 0).ok());
    }
  });
  EXPECT_EQ(visited, (std::vector<storage::TupleKey>{3, 10, 50}));
}

// --- Randomized differential vs a dense per-key reference model ----------

struct DenseModel {
  struct Entry {
    bool routed = false;
    PartitionId primary = 0;
    std::vector<PartitionId> replicas;
  };
  std::vector<Entry> keys;
  explicit DenseModel(uint64_t n) : keys(n) {}

  bool SetPrimary(uint64_t k, PartitionId p) {
    keys[k].routed = true;
    keys[k].primary = p;
    return true;
  }
  bool AddReplica(uint64_t k, PartitionId p) {
    Entry& e = keys[k];
    if (!e.routed) return false;
    if (e.primary == p) return false;
    if (std::find(e.replicas.begin(), e.replicas.end(), p) !=
        e.replicas.end()) {
      return false;
    }
    e.replicas.push_back(p);
    return true;
  }
  bool RemoveReplica(uint64_t k, PartitionId p) {
    Entry& e = keys[k];
    auto it = std::find(e.replicas.begin(), e.replicas.end(), p);
    if (!e.routed || it == e.replicas.end()) return false;
    e.replicas.erase(it);
    return true;
  }
  bool Migrate(uint64_t k, PartitionId from, PartitionId to) {
    Entry& e = keys[k];
    if (!e.routed || e.primary != from) return false;
    e.primary = to;
    auto it = std::find(e.replicas.begin(), e.replicas.end(), to);
    if (it != e.replicas.end()) e.replicas.erase(it);
    return true;
  }
  bool Promote(uint64_t k, PartitionId np) {
    Entry& e = keys[k];
    auto it = std::find(e.replicas.begin(), e.replicas.end(), np);
    if (!e.routed || it == e.replicas.end()) return false;
    *it = e.primary;  // demote in place, matching the table's swap
    e.primary = np;
    return true;
  }
};

TEST(RoutingIntervalTest, RandomizedDifferentialAgainstDenseModel) {
  constexpr uint64_t kKeys = 512;
  constexpr uint32_t kParts = 8;
  constexpr int kMutations = 10'000;
  RoutingTable rt(kKeys);
  ASSERT_TRUE(rt.AssignRoundRobin(0, kKeys, kParts).ok());
  DenseModel model(kKeys);
  for (uint64_t k = 0; k < kKeys; ++k) {
    model.SetPrimary(k, static_cast<PartitionId>(k % kParts));
  }

  std::mt19937_64 rng(0xC0FFEE);
  for (int i = 0; i < kMutations; ++i) {
    const uint64_t k = rng() % kKeys;
    const auto p = static_cast<PartitionId>(rng() % kParts);
    const int op = static_cast<int>(rng() % 5);
    bool model_ok = false;
    bool table_ok = false;
    switch (op) {
      case 0: {
        // SetPrimary may not collide with a live replica; mirror the
        // generator guard the production writers obey.
        const auto& reps = model.keys[k].replicas;
        if (std::find(reps.begin(), reps.end(), p) != reps.end()) continue;
        model_ok = model.SetPrimary(k, p);
        table_ok = rt.SetPrimary(k, p).ok();
        break;
      }
      case 1:
        model_ok = model.AddReplica(k, p);
        table_ok = rt.AddReplica(k, p).ok();
        break;
      case 2:
        model_ok = model.RemoveReplica(k, p);
        table_ok = rt.RemoveReplica(k, p).ok();
        break;
      case 3: {
        const auto from = static_cast<PartitionId>(rng() % kParts);
        model_ok = model.Migrate(k, from, p);
        table_ok = rt.Migrate(k, from, p).ok();
        break;
      }
      case 4:
        model_ok = model.Promote(k, p);
        table_ok = rt.Promote(k, p).ok();
        break;
    }
    ASSERT_EQ(model_ok, table_ok) << "op " << op << " key " << k
                                  << " part " << p << " at step " << i;
    if (i % 1000 == 999) {
      for (uint64_t key = 0; key < kKeys; ++key) {
        Result<Placement> got = rt.GetPlacement(key);
        ASSERT_TRUE(got.ok()) << "key " << key;
        EXPECT_EQ(got->primary, model.keys[key].primary) << "key " << key;
        EXPECT_EQ(got->replicas, model.keys[key].replicas) << "key " << key;
      }
    }
  }

  // Final structural cross-check: counters, replicated-key census, and the
  // exception overlay staying a strict subset of the keyspace.
  std::vector<uint64_t> primaries(kParts, 0), replicas(kParts, 0);
  uint64_t replicated = 0;
  for (uint64_t key = 0; key < kKeys; ++key) {
    primaries[model.keys[key].primary]++;
    for (PartitionId r : model.keys[key].replicas) replicas[r]++;
    if (!model.keys[key].replicas.empty()) ++replicated;
  }
  for (uint32_t part = 0; part < kParts; ++part) {
    EXPECT_EQ(rt.CountPrimaries(part), primaries[part]) << "part " << part;
    EXPECT_EQ(rt.CountReplicas(part), replicas[part]) << "part " << part;
  }
  EXPECT_EQ(rt.replicated_key_count(), replicated);
  EXPECT_LE(rt.exception_count(), kKeys);
  EXPECT_GT(rt.ApproxBytes(), 0u);
}

}  // namespace
}  // namespace soap::router
