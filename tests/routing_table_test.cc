#include "src/router/routing_table.h"

#include <gtest/gtest.h>

namespace soap::router {
namespace {

TEST(RoutingTableTest, UnroutedKeyIsNotFound) {
  RoutingTable rt(10);
  EXPECT_TRUE(rt.GetPrimary(3).status().IsNotFound());
  EXPECT_TRUE(rt.GetPlacement(3).status().IsNotFound());
}

TEST(RoutingTableTest, OutOfRangeKey) {
  RoutingTable rt(10);
  EXPECT_TRUE(rt.GetPrimary(10).status().IsNotFound());
  EXPECT_FALSE(rt.SetPrimary(10, 0).ok());
}

TEST(RoutingTableTest, SetAndGetPrimary) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(3, 2).ok());
  EXPECT_EQ(*rt.GetPrimary(3), 2u);
  Result<Placement> p = rt.GetPlacement(3);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->primary, 2u);
  EXPECT_TRUE(p->replicas.empty());
  EXPECT_EQ(p->copy_count(), 1u);
}

TEST(RoutingTableTest, AddReplica) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(3, 0).ok());
  ASSERT_TRUE(rt.AddReplica(3, 1).ok());
  Result<Placement> p = rt.GetPlacement(3);
  EXPECT_EQ(p->copy_count(), 2u);
  EXPECT_TRUE(p->HasReplicaOn(0));
  EXPECT_TRUE(p->HasReplicaOn(1));
  EXPECT_FALSE(p->HasReplicaOn(2));
}

TEST(RoutingTableTest, ReplicaOnPrimaryPartitionRejected) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(3, 0).ok());
  EXPECT_EQ(rt.AddReplica(3, 0).code(), StatusCode::kAlreadyExists);
}

TEST(RoutingTableTest, DuplicateReplicaRejected) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(3, 0).ok());
  ASSERT_TRUE(rt.AddReplica(3, 1).ok());
  EXPECT_EQ(rt.AddReplica(3, 1).code(), StatusCode::kAlreadyExists);
}

TEST(RoutingTableTest, RemoveReplica) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(3, 0).ok());
  ASSERT_TRUE(rt.AddReplica(3, 1).ok());
  ASSERT_TRUE(rt.RemoveReplica(3, 1).ok());
  EXPECT_EQ(rt.GetPlacement(3)->copy_count(), 1u);
  EXPECT_TRUE(rt.RemoveReplica(3, 1).IsNotFound());
}

TEST(RoutingTableTest, RemovePrimaryViaReplicaApiRejected) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(3, 0).ok());
  EXPECT_EQ(rt.RemoveReplica(3, 0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RoutingTableTest, MigrateFlipsPrimary) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(3, 0).ok());
  ASSERT_TRUE(rt.Migrate(3, 0, 4).ok());
  EXPECT_EQ(*rt.GetPrimary(3), 4u);
}

TEST(RoutingTableTest, MigrateWithWrongSourceRejected) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(3, 0).ok());
  EXPECT_EQ(rt.Migrate(3, 2, 4).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(*rt.GetPrimary(3), 0u);  // unchanged
}

TEST(RoutingTableTest, CountPrimaries) {
  RoutingTable rt(10);
  for (storage::TupleKey k = 0; k < 10; ++k) {
    ASSERT_TRUE(rt.SetPrimary(k, k % 2).ok());
  }
  EXPECT_EQ(rt.CountPrimaries(0), 5u);
  EXPECT_EQ(rt.CountPrimaries(1), 5u);
  EXPECT_EQ(rt.CountPrimaries(2), 0u);
}

TEST(RoutingTableTest, VersionBumpsOnEveryMutation) {
  RoutingTable rt(10);
  const uint64_t v0 = rt.version();
  ASSERT_TRUE(rt.SetPrimary(1, 0).ok());
  ASSERT_TRUE(rt.AddReplica(1, 1).ok());
  ASSERT_TRUE(rt.Migrate(1, 0, 2).ok());
  ASSERT_TRUE(rt.RemoveReplica(1, 1).ok());
  EXPECT_EQ(rt.version(), v0 + 4);
}

TEST(RoutingTableTest, FailedMutationDoesNotBumpVersion) {
  RoutingTable rt(10);
  ASSERT_TRUE(rt.SetPrimary(1, 0).ok());
  const uint64_t v = rt.version();
  EXPECT_FALSE(rt.Migrate(1, 5, 2).ok());
  EXPECT_FALSE(rt.AddReplica(1, 0).ok());
  EXPECT_EQ(rt.version(), v);
}

}  // namespace
}  // namespace soap::router
