// Behavioural tests for the five scheduling strategies (§3), run on a
// scaled-down version of the paper's experiment so each case completes in
// well under a second of wall-clock time.

#include <gtest/gtest.h>

#include "src/engine/experiment.h"

namespace soap {
namespace {

engine::ExperimentConfig SmallConfig(SchedulingStrategy strategy,
                                     double utilization) {
  engine::ExperimentConfig config;
  config.workload_options.spec = workload::WorkloadSpec::Zipf(1.0);
  config.workload_options.spec.num_templates = 500;
  config.workload_options.spec.num_keys = 10'000;
  config.workload_options.utilization = utilization;
  config.warmup_intervals = 3;
  config.measured_intervals = 25;
  config.deployment.strategy = strategy;
  config.seed = 77;
  return config;
}

engine::ExperimentResult RunExperiment(SchedulingStrategy strategy,
                             double utilization) {
  return engine::Experiment(SmallConfig(strategy, utilization)).Run();
}

TEST(SchedulerBehaviourTest, ApplyAllDeploysFastest) {
  auto apply_all = RunExperiment(SchedulingStrategy::kApplyAll, 0.65);
  auto feedback = RunExperiment(SchedulingStrategy::kFeedback, 0.65);
  ASSERT_NE(apply_all.RepartitionCompletedAt(), -1);
  ASSERT_NE(feedback.RepartitionCompletedAt(), -1);
  EXPECT_LE(apply_all.RepartitionCompletedAt(),
            feedback.RepartitionCompletedAt());
}

TEST(SchedulerBehaviourTest, ApplyAllStallsNormalProcessing) {
  // During the stall interval(s) right after the plan lands, the normal
  // throughput must dip relative to the pre-repartition level. Use a
  // plan large enough that the stall covers a good part of an interval.
  engine::ExperimentConfig config =
      SmallConfig(SchedulingStrategy::kApplyAll, 0.65);
  config.workload_options.spec.num_templates = 3'500;
  config.workload_options.spec.num_keys = 20'000;
  auto r = engine::Experiment(config).Run();
  const double before = r.throughput.at(2);
  const double during = r.throughput.at(3);  // plan lands at interval 3
  EXPECT_LT(during, before * 0.8);
  // And latency for transactions stuck behind the stall spikes.
  EXPECT_GT(r.latency_ms.at(3), r.latency_ms.at(2) * 1.5);
}

TEST(SchedulerBehaviourTest, AfterAllStarvesUnderHighLoad) {
  auto r = RunExperiment(SchedulingStrategy::kAfterAll, 1.30);
  // Barely any repartitioning progress while overloaded.
  EXPECT_LT(r.rep_rate.at(r.rep_rate.size() - 1), 0.2);
  EXPECT_EQ(r.RepartitionCompletedAt(), -1);
}

TEST(SchedulerBehaviourTest, AfterAllFinishesUnderLowLoad) {
  auto r = RunExperiment(SchedulingStrategy::kAfterAll, 0.65);
  EXPECT_NE(r.RepartitionCompletedAt(), -1);
  EXPECT_TRUE(r.plan_completed);
}

TEST(SchedulerBehaviourTest, FeedbackMakesProgressUnderHighLoad) {
  auto feedback = RunExperiment(SchedulingStrategy::kFeedback, 1.30);
  auto after_all = RunExperiment(SchedulingStrategy::kAfterAll, 1.30);
  EXPECT_GT(feedback.rep_rate.TailMean(3),
            after_all.rep_rate.TailMean(3) + 0.3);
}

TEST(SchedulerBehaviourTest, PiggybackUsesCarriersNotTxns) {
  auto r = RunExperiment(SchedulingStrategy::kPiggyback, 1.30);
  EXPECT_GT(r.piggybacked_ops, 0u);
  // Pure piggyback never submits standalone repartition transactions.
  EXPECT_EQ(r.counters.submitted_repartition, 0u);
  EXPECT_GT(r.rep_rate.TailMean(3), 0.5);
}

TEST(SchedulerBehaviourTest, PiggybackSlowOnColdTailUnderLowLoad) {
  // §3.5's motivation: with few transactions to piggyback on, the cold
  // tail of the catalogue takes much longer than Hybrid.
  auto piggyback = RunExperiment(SchedulingStrategy::kPiggyback, 0.65);
  auto hybrid = RunExperiment(SchedulingStrategy::kHybrid, 0.65);
  const int hybrid_done = hybrid.RepartitionCompletedAt();
  ASSERT_NE(hybrid_done, -1);
  const int piggyback_done = piggyback.RepartitionCompletedAt();
  EXPECT_TRUE(piggyback_done == -1 || piggyback_done > hybrid_done);
}

TEST(SchedulerBehaviourTest, HybridCombinesBothMechanisms) {
  auto r = RunExperiment(SchedulingStrategy::kHybrid, 1.30);
  EXPECT_GT(r.piggybacked_ops, 0u);
  EXPECT_GT(r.counters.submitted_repartition, 0u);
  EXPECT_NE(r.RepartitionCompletedAt(), -1);
}

TEST(SchedulerBehaviourTest, HybridBeatsAfterAllThroughputUnderHighLoad) {
  auto hybrid = RunExperiment(SchedulingStrategy::kHybrid, 1.30);
  auto after_all = RunExperiment(SchedulingStrategy::kAfterAll, 1.30);
  EXPECT_GT(hybrid.throughput.TailMean(5),
            after_all.throughput.TailMean(5) * 1.1);
  EXPECT_LT(hybrid.latency_ms.TailMean(5),
            after_all.latency_ms.TailMean(5));
}

TEST(SchedulerBehaviourTest, EveryStrategyPreservesConsistency) {
  for (auto strategy :
       {SchedulingStrategy::kApplyAll, SchedulingStrategy::kAfterAll,
        SchedulingStrategy::kFeedback, SchedulingStrategy::kPiggyback,
        SchedulingStrategy::kHybrid}) {
    auto r = RunExperiment(strategy, 1.30);
    EXPECT_TRUE(r.audit.ok())
        << StrategyName(strategy) << ": " << r.audit.ToString();
  }
}

TEST(SchedulerBehaviourTest, PlanOpsNeverDoubleApplied) {
  for (auto strategy :
       {SchedulingStrategy::kFeedback, SchedulingStrategy::kPiggyback,
        SchedulingStrategy::kHybrid}) {
    auto r = RunExperiment(strategy, 0.65);
    EXPECT_LE(r.plan_ops_applied, r.plan_ops_total)
        << StrategyName(strategy);
  }
}

TEST(SchedulerBehaviourTest, FeedbackRespectsPerIntervalCap) {
  engine::ExperimentConfig config =
      SmallConfig(SchedulingStrategy::kFeedback, 0.65);
  config.deployment.feedback.max_txns_per_interval = 5;
  auto r = engine::Experiment(config).Run();
  // With at most 5 txns/interval plus the low-priority trickle, the plan
  // (500 txns) cannot complete within 25 intervals... but idle capacity
  // lets low-priority ones run too, so just check plausibility: strictly
  // fewer normal-priority submissions than intervals * cap.
  EXPECT_LE(r.counters.submitted_repartition,
            500u + 25u * 5u + 64u /* low window refills */);
}

TEST(SchedulerBehaviourTest, DeterministicAcrossRuns) {
  auto a = RunExperiment(SchedulingStrategy::kHybrid, 1.30);
  auto b = RunExperiment(SchedulingStrategy::kHybrid, 1.30);
  ASSERT_EQ(a.throughput.size(), b.throughput.size());
  for (size_t i = 0; i < a.throughput.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.throughput.at(i), b.throughput.at(i)) << i;
    EXPECT_DOUBLE_EQ(a.latency_ms.at(i), b.latency_ms.at(i)) << i;
    EXPECT_DOUBLE_EQ(a.rep_rate.at(i), b.rep_rate.at(i)) << i;
  }
  EXPECT_EQ(a.events_executed, b.events_executed);
}

}  // namespace
}  // namespace soap
