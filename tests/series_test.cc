#include "src/common/series.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace soap {
namespace {

TEST(SeriesTest, AppendAndStats) {
  Series s("x");
  for (double v : {1.0, 5.0, 3.0}) s.Append(v);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
}

TEST(SeriesTest, EmptyStats) {
  Series s("x");
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.TailMean(3), 0.0);
}

TEST(SeriesTest, TailMean) {
  Series s("x");
  for (double v : {100.0, 1.0, 2.0, 3.0}) s.Append(v);
  EXPECT_DOUBLE_EQ(s.TailMean(3), 2.0);
  EXPECT_DOUBLE_EQ(s.TailMean(10), 26.5);  // fewer points than requested
}

TEST(SeriesTest, FirstIndexAtLeast) {
  Series s("x");
  for (double v : {0.1, 0.5, 0.99, 1.0, 1.0}) s.Append(v);
  EXPECT_EQ(s.FirstIndexAtLeast(0.999), 3);
  EXPECT_EQ(s.FirstIndexAtLeast(0.5), 1);
  EXPECT_EQ(s.FirstIndexAtLeast(2.0), -1);
}

TEST(SeriesBundleTest, AddIsIdempotentPerName) {
  SeriesBundle b("t");
  Series& first = b.Add("a");
  first.Append(1.0);
  Series& again = b.Add("a");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(b.series().size(), 1u);
}

TEST(SeriesBundleTest, InsertCopiesUnderNewName) {
  Series src("orig");
  src.Append(4.0);
  src.Append(8.0);
  SeriesBundle b("t");
  b.Insert("renamed", src);
  const Series* found = b.Find("renamed");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name(), "renamed");
  EXPECT_EQ(found->size(), 2u);
  EXPECT_DOUBLE_EQ(found->at(1), 8.0);
}

TEST(SeriesBundleTest, FindMissingReturnsNull) {
  SeriesBundle b("t");
  EXPECT_EQ(b.Find("nope"), nullptr);
}

TEST(SeriesBundleTest, TableHasHeaderAndRows) {
  SeriesBundle b("my title");
  Series& s = b.Add("col");
  s.Append(1.5);
  s.Append(2.5);
  const std::string table = b.ToTable();
  EXPECT_NE(table.find("my title"), std::string::npos);
  EXPECT_NE(table.find("col"), std::string::npos);
  EXPECT_NE(table.find("1.500"), std::string::npos);
  EXPECT_NE(table.find("2.500"), std::string::npos);
}

TEST(SeriesBundleTest, TableStrideSkipsRows) {
  SeriesBundle b("t");
  Series& s = b.Add("c");
  for (int i = 0; i < 10; ++i) s.Append(i);
  std::string table = b.ToTable(5);
  // rows 0 and 5 only
  EXPECT_NE(table.find("\n5"), std::string::npos);
  EXPECT_EQ(table.find("\n7"), std::string::npos);
}

TEST(SeriesBundleTest, CsvRoundTrip) {
  SeriesBundle b("t");
  Series& x = b.Add("x");
  x.Append(1.0);
  x.Append(2.0);
  Series& y = b.Add("y");
  y.Append(3.0);
  const std::string path = ::testing::TempDir() + "/soap_series_test.csv";
  ASSERT_TRUE(b.WriteCsv(path).ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string csv = ss.str();
  EXPECT_NE(csv.find("interval,x,y"), std::string::npos);
  EXPECT_NE(csv.find("0,1,3"), std::string::npos);
  EXPECT_NE(csv.find("1,2,"), std::string::npos);  // ragged column padded
  std::remove(path.c_str());
}

TEST(SeriesBundleTest, CsvToBadPathFails) {
  SeriesBundle b("t");
  b.Add("x").Append(1.0);
  EXPECT_FALSE(b.WriteCsv("/nonexistent_dir_xyz/out.csv").ok());
}

}  // namespace
}  // namespace soap
