#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

namespace soap::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(5, [&] { order.push_back(1); });
  sim.At(5, [&] { order.push_back(2); });
  sim.At(5, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, AfterIsRelative) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.At(100, [&] {
    sim.After(50, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.After(1, chain);
  };
  sim.After(1, chain);
  sim.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.Now(), 10);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.At(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, CancelUnknownIdFails) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(9999));
}

TEST(SimulatorTest, DoubleCancelFails) {
  Simulator sim;
  EventId id = sim.At(10, [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, CancelOneOfManyAtSameTime) {
  Simulator sim;
  std::vector<int> order;
  sim.At(5, [&] { order.push_back(1); });
  EventId id = sim.At(5, [&] { order.push_back(2); });
  sim.At(5, [&] { order.push_back(3); });
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40}) {
    sim.At(t, [&, t] { fired.push_back(t); });
  }
  sim.RunUntil(25);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.Now(), 25);
  sim.Run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.At(1, [&] { ++count; });
  sim.At(2, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventCountTracksExecutions) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.At(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

// The event queue must never copy a scheduled callback: closures own
// move-only state (unique_ptr payloads, InlineFn continuations) and a
// copying pop would either fail to compile or double-run side effects.
TEST(SimulatorTest, CallbacksAreMoveOnlyAndMovedOut) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    auto payload = std::make_unique<int>(i);
    sim.At(10 - i, [&order, payload = std::move(payload)]() {
      order.push_back(*payload);
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(SimulatorTest, CancelOfFiredEventFails) {
  Simulator sim;
  const EventId id = sim.At(5, [] {});
  sim.Run();
  // The event already executed; cancelling its stale handle must report
  // failure (the seed's implementation said "true" and leaked a tombstone).
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, FiredAndCancelledEventsReleaseTheirSlots) {
  Simulator sim;
  std::vector<EventId> cancelled;
  for (int i = 0; i < 100; ++i) {
    sim.At(i, [] {});
    cancelled.push_back(sim.At(1000 + i, [] {}));
  }
  EXPECT_EQ(sim.live_slots(), 200u);
  for (EventId id : cancelled) EXPECT_TRUE(sim.Cancel(id));
  EXPECT_EQ(sim.live_slots(), 100u);
  sim.Run();
  // Nothing pending, nothing leaked: every slot was recycled, including
  // the tombstones of fired-then-cancelled handles.
  EXPECT_EQ(sim.live_slots(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 100u);
  for (EventId id : cancelled) EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.live_slots(), 0u);
}

TEST(SimulatorTest, SlotsAreRecycledAcrossGenerations) {
  Simulator sim;
  // Schedule/run repeatedly: the slab must stay at steady-state size while
  // ids keep changing (generation safety: old handles never cancel new
  // events).
  EventId previous = kInvalidEventId;
  for (int round = 0; round < 50; ++round) {
    const EventId id = sim.After(1, [] {});
    EXPECT_NE(id, previous);
    EXPECT_FALSE(sim.Cancel(previous));  // stale handle from last round
    sim.Run();
    previous = id;
  }
  EXPECT_EQ(sim.live_slots(), 0u);
  EXPECT_EQ(sim.events_executed(), 50u);
}

TEST(SimulatorTest, RunUntilDeadlineSemanticsSurviveCancelledHead) {
  // Deliberately bug-compatible with the seed: RunUntil consults the RAW
  // queue head (cancelled or not) against the deadline, and Step() then
  // executes the next LIVE event even if it lies beyond it. Experiments
  // only observe interval boundaries through this path, so changing it
  // would change every figure byte. This test pins the quirk.
  Simulator sim;
  int ran = 0;
  const EventId id = sim.At(10, [&] { ++ran; });
  sim.At(20, [&] { ++ran; });
  ASSERT_TRUE(sim.Cancel(id));
  sim.RunUntil(15);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.Now(), 20);
}

}  // namespace
}  // namespace soap::sim
