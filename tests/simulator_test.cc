#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace soap::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(5, [&] { order.push_back(1); });
  sim.At(5, [&] { order.push_back(2); });
  sim.At(5, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, AfterIsRelative) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.At(100, [&] {
    sim.After(50, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.After(1, chain);
  };
  sim.After(1, chain);
  sim.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.Now(), 10);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.At(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, CancelUnknownIdFails) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(9999));
}

TEST(SimulatorTest, DoubleCancelFails) {
  Simulator sim;
  EventId id = sim.At(10, [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, CancelOneOfManyAtSameTime) {
  Simulator sim;
  std::vector<int> order;
  sim.At(5, [&] { order.push_back(1); });
  EventId id = sim.At(5, [&] { order.push_back(2); });
  sim.At(5, [&] { order.push_back(3); });
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40}) {
    sim.At(t, [&, t] { fired.push_back(t); });
  }
  sim.RunUntil(25);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.Now(), 25);
  sim.Run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.At(1, [&] { ++count; });
  sim.At(2, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventCountTracksExecutions) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.At(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

}  // namespace
}  // namespace soap::sim
