#include "src/sketch/count_min.h"
#include "src/sketch/space_saving.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/planner/co_access_graph.h"
#include "src/txn/transaction.h"

namespace soap {
namespace {

// --- CountMin -------------------------------------------------------------

TEST(CountMinTest, CountsAreNeverUnderestimates) {
  sketch::CountMin cm(/*width_log2=*/8, /*depth=*/4);
  for (uint64_t k = 0; k < 200; ++k) cm.Add(k, k + 1);
  for (uint64_t k = 0; k < 200; ++k) {
    EXPECT_GE(cm.Estimate(k), k + 1) << "key " << k;
  }
}

TEST(CountMinTest, ExactForSparseKeys) {
  sketch::CountMin cm(/*width_log2=*/16, /*depth=*/4);
  cm.Add(42, 7);
  cm.Add(1'000'003, 11);
  EXPECT_EQ(cm.Estimate(42), 7u);
  EXPECT_EQ(cm.Estimate(1'000'003), 11u);
  EXPECT_EQ(cm.Estimate(5), 0u);
}

TEST(CountMinTest, DecayHalvesCounts) {
  sketch::CountMin cm(/*width_log2=*/12, /*depth=*/4);
  cm.Add(9, 8);
  cm.Decay(1);
  EXPECT_EQ(cm.Estimate(9), 4u);
  cm.Decay(2);
  EXPECT_EQ(cm.Estimate(9), 1u);
}

TEST(CountMinTest, ApproxBytesMatchesGeometry) {
  sketch::CountMin cm(/*width_log2=*/10, /*depth=*/3);
  // 3 rows of 1024 uint64 counters = 24 KiB, plus object overhead.
  EXPECT_GE(cm.ApproxBytes(), 3u * 1024u * sizeof(uint64_t));
  EXPECT_LT(cm.ApproxBytes(), 3u * 1024u * sizeof(uint64_t) + 4096u);
}

// --- SpaceSaving ----------------------------------------------------------

TEST(SpaceSavingTest, ExactBelowCapacity) {
  sketch::SpaceSaving ss(4);
  ss.Add(1, 5);
  ss.Add(2, 3);
  ss.Add(1, 2);
  EXPECT_EQ(ss.size(), 2u);
  EXPECT_TRUE(ss.Contains(1));
  EXPECT_EQ(ss.Estimate(1), 7u);
  EXPECT_EQ(ss.Estimate(2), 3u);
  EXPECT_FALSE(ss.Contains(3));
  EXPECT_EQ(ss.Estimate(3), 0u);
}

TEST(SpaceSavingTest, EvictionInheritsMinimumCount) {
  sketch::SpaceSaving ss(2);
  ss.Add(10, 5);
  ss.Add(20, 3);
  // Capacity reached: key 30 evicts the (count, key)-least entry (20, 3)
  // and inherits its count as error.
  ss.Add(30);
  EXPECT_FALSE(ss.Contains(20));
  EXPECT_TRUE(ss.Contains(30));
  EXPECT_EQ(ss.Estimate(30), 4u);
  auto top = ss.TopK();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 10u);
  EXPECT_EQ(top[1].key, 30u);
  EXPECT_EQ(top[1].error, 3u);
}

TEST(SpaceSavingTest, TopKOrdersHottestFirstTiesByKey) {
  sketch::SpaceSaving ss(8);
  ss.Add(5, 2);
  ss.Add(3, 7);
  ss.Add(9, 2);
  ss.Add(1, 4);
  auto top = ss.TopK();
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].key, 3u);
  EXPECT_EQ(top[1].key, 1u);
  // Tie at count 2 breaks by ascending key.
  EXPECT_EQ(top[2].key, 5u);
  EXPECT_EQ(top[3].key, 9u);
}

TEST(SpaceSavingTest, DecayDropsDeadEntriesAndFreesSlots) {
  sketch::SpaceSaving ss(2);
  ss.Add(1, 4);
  ss.Add(2, 1);
  ss.Decay(1);  // 1 -> 2, 2 -> 0 (dropped)
  EXPECT_EQ(ss.size(), 1u);
  EXPECT_TRUE(ss.Contains(1));
  EXPECT_FALSE(ss.Contains(2));
  // The freed slot admits a new key without eviction error.
  ss.Add(7);
  EXPECT_EQ(ss.Estimate(7), 1u);
  EXPECT_EQ(ss.TopK()[1].error, 0u);
}

TEST(SpaceSavingTest, ZeroCapacityIsInert) {
  sketch::SpaceSaving ss(0);
  ss.Add(1);
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_FALSE(ss.Contains(1));
}

TEST(SpaceSavingTest, Deterministic) {
  sketch::SpaceSaving a(3), b(3);
  const uint64_t keys[] = {5, 9, 5, 2, 7, 7, 2, 5, 11, 3, 9};
  for (uint64_t k : keys) a.Add(k);
  for (uint64_t k : keys) b.Add(k);
  auto ta = a.TopK(), tb = b.TopK();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].key, tb[i].key);
    EXPECT_EQ(ta[i].count, tb[i].count);
  }
}

// --- CoAccessGraph sketch mode --------------------------------------------

txn::Transaction MakeTxn(std::vector<storage::TupleKey> keys) {
  txn::Transaction t;
  for (storage::TupleKey k : keys) {
    txn::Operation op;
    op.kind = txn::OpKind::kRead;
    op.key = k;
    t.ops.push_back(op);
  }
  return t;
}

TEST(CoAccessGraphSketchTest, ExactBelowThreshold) {
  planner::CoAccessGraphConfig cfg;
  cfg.num_keys = 1000;
  cfg.sketch_threshold = 1'000'000;
  planner::CoAccessGraph g(cfg);
  EXPECT_FALSE(g.sketch_mode());
  g.Observe(MakeTxn({1, 2}));
  EXPECT_EQ(g.vertex_count(), 2u);
  EXPECT_EQ(g.EdgeWeight(1, 2), 1u);
}

TEST(CoAccessGraphSketchTest, SupernodeIdsAreTagged) {
  EXPECT_FALSE(planner::CoAccessGraph::IsSupernode(0));
  EXPECT_FALSE(planner::CoAccessGraph::IsSupernode((1ULL << 63) - 1));
  EXPECT_TRUE(
      planner::CoAccessGraph::IsSupernode(planner::CoAccessGraph::kSupernodeBit));
}

TEST(CoAccessGraphSketchTest, HotKeysGetVerticesColdTailFolds) {
  planner::CoAccessGraphConfig cfg;
  cfg.num_keys = 10'000;
  cfg.sketch_threshold = 1;  // force sketch mode
  cfg.sketch_topk = 2;
  cfg.supernode_ranges = 10;  // ranges of 1000 keys
  planner::CoAccessGraph g(cfg);
  ASSERT_TRUE(g.sketch_mode());

  const storage::TupleKey s0 = g.SupernodeOf(1);
  ASSERT_TRUE(planner::CoAccessGraph::IsSupernode(s0));
  ASSERT_EQ(g.SupernodeOf(2), s0);

  // First sighting counts as cold churn (guaranteed count 1): both keys
  // land on their supernode. From the second observation they are hot and
  // get exact vertices and an exact edge.
  for (int i = 0; i < 3; ++i) g.Observe(MakeTxn({1, 2}));
  EXPECT_EQ(g.vertex_count(), 3u);  // supernode + the two hot keys
  EXPECT_EQ(g.VertexWeight(s0), 2u);
  EXPECT_EQ(g.VertexWeight(1), 2u);
  EXPECT_EQ(g.EdgeWeight(1, 2), 2u);

  // Two new keys displace 1 and 2 from the top-k (space-saving adoption)
  // but arrive with no guaranteed count, so they observe as supernode
  // mass, not as vertices.
  g.Observe(MakeTxn({5001, 5002}));
  const storage::TupleKey s5 = g.SupernodeOf(5001);
  EXPECT_EQ(g.VertexWeight(s5), 2u);
  EXPECT_EQ(g.VertexWeight(5001), 0u);

  // Decay folds the demoted keys 1 and 2 into their supernode: decayed
  // weights 1+1 on top of the supernode's own decayed 1, and the (1,2)
  // edge becomes internal and vanishes.
  g.Decay();
  EXPECT_EQ(g.VertexWeight(1), 0u);
  EXPECT_EQ(g.VertexWeight(2), 0u);
  EXPECT_EQ(g.VertexWeight(s0), 3u);
  EXPECT_EQ(g.VertexWeight(s5), 1u);
  EXPECT_EQ(g.vertex_count(), 2u);
  EXPECT_EQ(g.EdgeWeight(1, 2), 0u);
  // The demoted keys remain queryable through the count-min estimate.
  EXPECT_GE(g.HeatEstimate(1), 1u);
}

TEST(CoAccessGraphSketchTest, ColdKeysObserveIntoSupernodes) {
  planner::CoAccessGraphConfig cfg;
  cfg.num_keys = 10'000;
  cfg.sketch_threshold = 1;
  cfg.sketch_topk = 4;
  cfg.supernode_ranges = 10;
  planner::CoAccessGraph g(cfg);

  // Pin two genuinely hot keys (first sighting is cold, the other 49 are
  // hot).
  for (int i = 0; i < 50; ++i) g.Observe(MakeTxn({7, 8}));
  EXPECT_EQ(g.VertexWeight(7), 49u);
  EXPECT_EQ(g.EdgeWeight(7, 8), 49u);

  // A transaction touching a hot key and two fresh cold keys from
  // distinct ranges: the cold ones land on their supernodes, edges
  // connect the hot vertex to both supernodes.
  g.Observe(MakeTxn({7, 1500, 9500}));
  const storage::TupleKey s1 = g.SupernodeOf(1500);
  const storage::TupleKey s9 = g.SupernodeOf(9500);
  EXPECT_NE(s1, s9);
  EXPECT_EQ(g.VertexWeight(s1), 1u);
  EXPECT_EQ(g.VertexWeight(s9), 1u);
  EXPECT_EQ(g.EdgeWeight(7, s1), 1u);
  EXPECT_EQ(g.EdgeWeight(s1, s9), 1u);
  EXPECT_EQ(g.VertexWeight(1500), 0u);
  // Vertex count stays bounded: 2 hot keys + 3 supernodes, nothing per
  // cold key.
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_GT(g.ApproxBytes(), 0u);
}

TEST(CoAccessGraphSketchTest, ReadsAndWritesFollowTheVertexMapping) {
  planner::CoAccessGraphConfig cfg;
  cfg.num_keys = 10'000;
  cfg.sketch_threshold = 1;
  cfg.sketch_topk = 4;
  cfg.supernode_ranges = 10;
  planner::CoAccessGraph g(cfg);

  txn::Transaction t;
  txn::Operation read;
  read.kind = txn::OpKind::kRead;
  read.key = 42;
  txn::Operation write;
  write.kind = txn::OpKind::kWrite;
  write.key = 42;
  t.ops = {read, write};
  g.Observe(t);  // first sighting: cold, mix lands on the supernode
  const storage::TupleKey s0 = g.SupernodeOf(42);
  EXPECT_EQ(g.VertexReads(s0), 1u);
  EXPECT_EQ(g.VertexWrites(s0), 1u);
  g.Observe(t);  // now hot: mix lands on the key's own vertex
  EXPECT_EQ(g.VertexReads(42), 1u);
  EXPECT_EQ(g.VertexWrites(42), 1u);
}

}  // namespace
}  // namespace soap
