#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/result.h"

namespace soap {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoryOk) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("tuple 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "tuple 7");
  EXPECT_EQ(s.ToString(), "NotFound: tuple 7");
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_FALSE(Status::OK().IsNotFound());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Aborted("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    SOAP_RETURN_NOT_OK(Status::Corruption("bad page"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kCorruption);

  auto succeeds = []() -> Status {
    SOAP_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("no"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOr) {
  Result<int> err(Status::NotFound("no"));
  EXPECT_EQ(err.value_or(-1), -1);
  Result<int> val(7);
  EXPECT_EQ(val.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Unavailable("down");
    return 5;
  };
  auto outer = [&](bool fail) -> Status {
    SOAP_ASSIGN_OR_RETURN(int v, inner(fail));
    EXPECT_EQ(v, 5);
    return Status::OK();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(true).code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace soap
