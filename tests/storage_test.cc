#include <gtest/gtest.h>

#include "src/storage/storage_engine.h"
#include "src/storage/table.h"
#include "src/storage/tuple.h"
#include "src/storage/wal.h"

namespace soap::storage {
namespace {

Tuple Make(TupleKey key, int64_t content) {
  Tuple t;
  t.key = key;
  t.content = content;
  return t;
}

// ---------------------------------------------------------------- Table

TEST(TableTest, InsertAndGet) {
  Table t;
  ASSERT_TRUE(t.Insert(Make(1, 10)).ok());
  Result<Tuple> r = t.Get(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->content, 10);
  EXPECT_EQ(r->version, 0u);
}

TEST(TableTest, DuplicateInsertFails) {
  Table t;
  ASSERT_TRUE(t.Insert(Make(1, 10)).ok());
  EXPECT_EQ(t.Insert(Make(1, 20)).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(t.Get(1)->content, 10);
}

TEST(TableTest, GetMissingIsNotFound) {
  Table t;
  EXPECT_TRUE(t.Get(5).status().IsNotFound());
}

TEST(TableTest, UpdateBumpsVersion) {
  Table t;
  ASSERT_TRUE(t.Insert(Make(1, 10)).ok());
  ASSERT_TRUE(t.Update(1, 99).ok());
  Result<Tuple> r = t.Get(1);
  EXPECT_EQ(r->content, 99);
  EXPECT_EQ(r->version, 1u);
  ASSERT_TRUE(t.Update(1, 100).ok());
  EXPECT_EQ(t.Get(1)->version, 2u);
}

TEST(TableTest, UpdateMissingFails) {
  Table t;
  EXPECT_TRUE(t.Update(7, 1).IsNotFound());
}

TEST(TableTest, EraseRemoves) {
  Table t;
  ASSERT_TRUE(t.Insert(Make(1, 10)).ok());
  ASSERT_TRUE(t.Erase(1).ok());
  EXPECT_FALSE(t.Contains(1));
  EXPECT_TRUE(t.Erase(1).IsNotFound());
}

TEST(TableTest, UpsertOverwrites) {
  Table t;
  t.Upsert(Make(1, 10));
  t.Upsert(Make(1, 20));
  EXPECT_EQ(t.Get(1)->content, 20);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableTest, ForEachVisitsAll) {
  Table t;
  for (TupleKey k = 0; k < 10; ++k) t.Upsert(Make(k, 0));
  int visits = 0;
  t.ForEach([&](const Tuple&) { ++visits; });
  EXPECT_EQ(visits, 10);
}

// ------------------------------------------------------------------ WAL

TEST(WalTest, ReplayReconstructsState) {
  Wal wal;
  wal.AppendInsert(1, Make(1, 10));
  wal.AppendInsert(1, Make(2, 20));
  Tuple updated = Make(1, 99);
  updated.version = 1;
  wal.AppendUpdate(2, updated);
  wal.AppendErase(3, 2);

  Table t;
  ASSERT_TRUE(wal.Replay(&t).ok());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Get(1)->content, 99);
  EXPECT_EQ(t.Get(1)->version, 1u);
}

TEST(WalTest, ReplayEraseOfMissingKeyIsCorruption) {
  Wal wal;
  wal.AppendErase(1, 42);
  Table t;
  EXPECT_EQ(wal.Replay(&t).code(), StatusCode::kCorruption);
}

TEST(WalTest, TruncateKeepsTail) {
  Wal wal;
  for (int i = 0; i < 10; ++i) wal.AppendInsert(1, Make(i, i));
  wal.Truncate(3);
  EXPECT_EQ(wal.size(), 3u);
  EXPECT_EQ(wal.records().front().tuple.key, 7u);
}

TEST(WalTest, TruncateNoOpWhenSmall) {
  Wal wal;
  wal.AppendInsert(1, Make(1, 1));
  wal.Truncate(5);
  EXPECT_EQ(wal.size(), 1u);
}

TEST(WalTest, DumpToFile) {
  Wal wal;
  wal.AppendInsert(7, Make(3, 30));
  const std::string path = ::testing::TempDir() + "/soap_wal_test.txt";
  ASSERT_TRUE(wal.DumpToFile(path).ok());
  std::remove(path.c_str());
}

// --------------------------------------------------------- StorageEngine

TEST(StorageEngineTest, ApplyInsertReadBack) {
  StorageEngine engine(0);
  ASSERT_TRUE(engine.ApplyInsert(1, Make(5, 50)).ok());
  EXPECT_TRUE(engine.Contains(5));
  EXPECT_EQ(engine.Read(5)->content, 50);
  EXPECT_EQ(engine.wal().size(), 1u);
}

TEST(StorageEngineTest, ApplyUpdateLogsNewValue) {
  StorageEngine engine(0);
  ASSERT_TRUE(engine.ApplyInsert(1, Make(5, 50)).ok());
  ASSERT_TRUE(engine.ApplyUpdate(2, 5, 77).ok());
  EXPECT_EQ(engine.Read(5)->content, 77);
  EXPECT_EQ(engine.wal().records().back().tuple.content, 77);
}

TEST(StorageEngineTest, ApplyUpdateMissingFails) {
  StorageEngine engine(0);
  EXPECT_TRUE(engine.ApplyUpdate(1, 99, 1).IsNotFound());
  EXPECT_EQ(engine.wal().size(), 0u);  // failed op must not log
}

TEST(StorageEngineTest, ApplyEraseRemoves) {
  StorageEngine engine(0);
  ASSERT_TRUE(engine.ApplyInsert(1, Make(5, 50)).ok());
  ASSERT_TRUE(engine.ApplyErase(2, 5).ok());
  EXPECT_FALSE(engine.Contains(5));
}

TEST(StorageEngineTest, RecoveryEqualsLiveState) {
  StorageEngine engine(3);
  for (TupleKey k = 0; k < 50; ++k) {
    ASSERT_TRUE(engine.ApplyInsert(k, Make(k, static_cast<int64_t>(k))).ok());
  }
  for (TupleKey k = 0; k < 50; k += 2) {
    ASSERT_TRUE(engine.ApplyUpdate(100 + k, k, -1).ok());
  }
  for (TupleKey k = 0; k < 50; k += 5) {
    ASSERT_TRUE(engine.ApplyErase(200 + k, k).ok());
  }
  // Snapshot live state, recover from WAL, compare.
  std::vector<std::pair<TupleKey, int64_t>> before;
  engine.table().ForEach([&](const Tuple& t) {
    before.emplace_back(t.key, t.content);
  });
  ASSERT_TRUE(engine.RecoverFromWal().ok());
  EXPECT_EQ(engine.tuple_count(), before.size());
  for (const auto& [key, content] : before) {
    ASSERT_TRUE(engine.Contains(key));
    EXPECT_EQ(engine.Read(key)->content, content);
  }
}

TEST(StorageEngineTest, BulkLoadSkipsWal) {
  StorageEngine engine(0);
  engine.BulkLoad(Make(1, 1));
  EXPECT_TRUE(engine.Contains(1));
  EXPECT_EQ(engine.wal().size(), 0u);
}

TEST(StorageEngineTest, PartitionIdStored) {
  StorageEngine engine(4);
  EXPECT_EQ(engine.partition_id(), 4u);
}

TEST(StorageEngineTest, CheckpointSealsBulkLoad) {
  StorageEngine engine(0);
  engine.BulkLoad(Make(1, 10));  // un-logged
  engine.Checkpoint();
  ASSERT_TRUE(engine.ApplyUpdate(1, 1, 20).ok());
  ASSERT_TRUE(engine.CrashAndRecover().ok());
  EXPECT_EQ(engine.Read(1)->content, 20);  // checkpoint + log suffix
  EXPECT_EQ(engine.checkpoint_size(), 1u);
}

TEST(StorageEngineTest, CrashWithoutCheckpointLosesBulkLoad) {
  // Bulk load is un-logged by design: without a checkpoint, recovery
  // rebuilds only logged state. This documents why the cluster
  // checkpoints after loading.
  StorageEngine engine(0);
  engine.BulkLoad(Make(1, 10));
  ASSERT_TRUE(engine.CrashAndRecover().ok());
  EXPECT_FALSE(engine.Contains(1));
}

TEST(StorageEngineTest, CheckpointTruncatesWal) {
  StorageEngine engine(0);
  for (TupleKey k = 0; k < 20; ++k) {
    ASSERT_TRUE(engine.ApplyInsert(1, Make(k, 0)).ok());
  }
  EXPECT_EQ(engine.wal().size(), 20u);
  engine.Checkpoint();
  EXPECT_EQ(engine.wal().size(), 0u);
  ASSERT_TRUE(engine.ApplyUpdate(2, 5, 99).ok());
  EXPECT_EQ(engine.wal().size(), 1u);
  ASSERT_TRUE(engine.CrashAndRecover().ok());
  EXPECT_EQ(engine.tuple_count(), 20u);
  EXPECT_EQ(engine.Read(5)->content, 99);
}

TEST(StorageEngineTest, RepeatedCrashRecoverIdempotent) {
  StorageEngine engine(0);
  engine.BulkLoad(Make(1, 10));
  engine.Checkpoint();
  ASSERT_TRUE(engine.ApplyInsert(1, Make(2, 20)).ok());
  ASSERT_TRUE(engine.ApplyErase(2, 1).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.CrashAndRecover().ok());
    EXPECT_FALSE(engine.Contains(1));
    EXPECT_EQ(engine.Read(2)->content, 20);
    EXPECT_EQ(engine.tuple_count(), 1u);
  }
}

}  // namespace
}  // namespace soap::storage
