#include "src/workload/template_catalog.h"

#include <gtest/gtest.h>

#include <set>

namespace soap::workload {
namespace {

WorkloadSpec SmallSpec(double alpha, PopularityDist dist) {
  WorkloadSpec s;
  s.distribution = dist;
  s.num_templates = 200;
  s.num_keys = 2000;
  s.alpha = alpha;
  s.seed = 5;
  return s;
}

TEST(TemplateCatalogTest, BuildsRequestedTemplates) {
  TemplateCatalog catalog(SmallSpec(1.0, PopularityDist::kZipf), 5);
  EXPECT_EQ(catalog.size(), 200u);
  for (uint32_t t = 0; t < catalog.size(); ++t) {
    EXPECT_EQ(catalog.at(t).id, t);
    EXPECT_EQ(catalog.at(t).keys.size(), 5u);
    EXPECT_EQ(catalog.at(t).is_write.size(), 5u);
  }
}

TEST(TemplateCatalogTest, KeySetsDisjointAcrossTemplates) {
  TemplateCatalog catalog(SmallSpec(0.6, PopularityDist::kZipf), 5);
  std::set<storage::TupleKey> seen;
  for (const TxnTemplate& tmpl : catalog.templates()) {
    for (storage::TupleKey k : tmpl.keys) {
      EXPECT_TRUE(seen.insert(k).second) << "key " << k << " reused";
    }
  }
}

TEST(TemplateCatalogTest, AlphaControlsDistributedCount) {
  for (double alpha : {0.2, 0.6, 1.0}) {
    TemplateCatalog catalog(SmallSpec(alpha, PopularityDist::kUniform), 5);
    EXPECT_EQ(catalog.distributed_count(),
              static_cast<uint32_t>(alpha * 200 + 0.5));
    uint32_t actual = 0;
    for (const TxnTemplate& t : catalog.templates()) {
      actual += t.initially_distributed;
    }
    EXPECT_EQ(actual, catalog.distributed_count());
  }
}

TEST(TemplateCatalogTest, CollocatedTemplatesStayHome) {
  TemplateCatalog catalog(SmallSpec(0.5, PopularityDist::kZipf), 5);
  for (const TxnTemplate& tmpl : catalog.templates()) {
    if (tmpl.initially_distributed) continue;
    for (storage::TupleKey k : tmpl.keys) {
      EXPECT_EQ(catalog.InitialPartitionOf(k), tmpl.home_partition);
    }
    EXPECT_TRUE(tmpl.remote_keys.empty());
  }
}

TEST(TemplateCatalogTest, DistributedTemplatesSpanExactlyTwoPartitions) {
  TemplateCatalog catalog(SmallSpec(1.0, PopularityDist::kZipf), 5);
  for (const TxnTemplate& tmpl : catalog.templates()) {
    ASSERT_TRUE(tmpl.initially_distributed);
    std::set<uint32_t> partitions;
    for (storage::TupleKey k : tmpl.keys) {
      partitions.insert(catalog.InitialPartitionOf(k));
    }
    EXPECT_EQ(partitions.size(), 2u);
    EXPECT_EQ(tmpl.remote_keys.size(), 2u);  // floor(5/2)
    EXPECT_NE(tmpl.remote_partition, tmpl.home_partition);
    for (storage::TupleKey k : tmpl.remote_keys) {
      EXPECT_EQ(catalog.InitialPartitionOf(k), tmpl.remote_partition);
    }
  }
}

TEST(TemplateCatalogTest, ReadsOrderedBeforeWrites) {
  TemplateCatalog catalog(SmallSpec(1.0, PopularityDist::kZipf), 5);
  for (const TxnTemplate& tmpl : catalog.templates()) {
    bool seen_write = false;
    for (bool w : tmpl.is_write) {
      if (w) seen_write = true;
      if (seen_write) {
        EXPECT_TRUE(w);  // once writes start, no reads
      }
    }
  }
}

TEST(TemplateCatalogTest, WriteFractionRoughlyHalf) {
  TemplateCatalog catalog(SmallSpec(1.0, PopularityDist::kZipf), 5);
  uint64_t writes = 0, total = 0;
  for (const TxnTemplate& tmpl : catalog.templates()) {
    for (bool w : tmpl.is_write) {
      writes += w;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(writes) / total, 0.5, 0.05);
}

TEST(TemplateCatalogTest, ZipfHomesBalanceExpectedLoad) {
  // The hottest templates must not pile onto one node: weighted load per
  // partition should be within a few percent of 1/P each.
  WorkloadSpec spec = SmallSpec(1.0, PopularityDist::kZipf);
  spec.num_templates = 5000;
  spec.num_keys = 25000;
  TemplateCatalog catalog(spec, 5);
  ZipfSampler pmf(spec.num_templates, spec.zipf_s);
  double load[5] = {0, 0, 0, 0, 0};
  for (uint32_t t = 0; t < spec.num_templates; ++t) {
    load[catalog.at(t).home_partition] += pmf.Pmf(t);
  }
  for (double l : load) EXPECT_NEAR(l, 0.2, 0.05);
}

TEST(TemplateCatalogTest, DeterministicGivenSeed) {
  TemplateCatalog a(SmallSpec(0.6, PopularityDist::kZipf), 5);
  TemplateCatalog b(SmallSpec(0.6, PopularityDist::kZipf), 5);
  for (uint32_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a.at(t).keys, b.at(t).keys);
    EXPECT_EQ(a.at(t).home_partition, b.at(t).home_partition);
    EXPECT_EQ(a.at(t).initially_distributed, b.at(t).initially_distributed);
  }
}

TEST(TemplateCatalogTest, InstantiateProducesMatchingOps) {
  TemplateCatalog catalog(SmallSpec(1.0, PopularityDist::kZipf), 5);
  auto t = catalog.Instantiate(3, 42);
  const TxnTemplate& tmpl = catalog.at(3);
  ASSERT_EQ(t->ops.size(), tmpl.keys.size());
  EXPECT_EQ(t->template_id, 3u);
  EXPECT_FALSE(t->is_repartition);
  for (size_t i = 0; i < t->ops.size(); ++i) {
    EXPECT_EQ(t->ops[i].key, tmpl.keys[i]);
    EXPECT_EQ(t->ops[i].kind, tmpl.is_write[i] ? txn::OpKind::kWrite
                                               : txn::OpKind::kRead);
    if (tmpl.is_write[i]) {
      EXPECT_EQ(t->ops[i].write_value, 42);
    }
  }
}

TEST(TemplateCatalogTest, PaperScaleConfigsFit) {
  // The paper's two workloads must satisfy templates * queries <= keys.
  WorkloadSpec zipf = WorkloadSpec::Zipf(1.0);
  EXPECT_LE(static_cast<uint64_t>(zipf.num_templates) * zipf.queries_per_txn,
            zipf.num_keys);
  WorkloadSpec uni = WorkloadSpec::Uniform(1.0);
  EXPECT_LE(static_cast<uint64_t>(uni.num_templates) * uni.queries_per_txn,
            uni.num_keys);
  EXPECT_EQ(zipf.num_templates, 23'457u);
  EXPECT_EQ(uni.num_templates, 30'000u);
  EXPECT_DOUBLE_EQ(zipf.zipf_s, 1.16);
}

}  // namespace
}  // namespace soap::workload
