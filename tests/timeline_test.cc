#include "src/obs/timeline.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/json.h"
#include "src/obs/report.h"

namespace soap::obs {
namespace {

TimelineTick MakeTick(uint32_t interval, uint32_t partitions) {
  TimelineTick tick;
  tick.t_us = static_cast<SimTime>(interval + 1) * 20'000'000;
  tick.interval = interval;
  tick.queue_depth = 10 + interval;
  tick.lock_wait_p99_ms = 1.5;
  tick.distributed_ratio = 0.25;
  for (uint32_t p = 0; p < partitions; ++p) {
    TimelinePartitionRow row;
    row.partition = p;
    row.load = 0.5 + 0.1 * p;
    row.queued_jobs = p;
    row.primaries = 100;
    row.replicas = 3;
    row.migrations_in = interval;
    tick.partitions.push_back(row);
  }
  return tick;
}

TEST(PartitionFlowsTest, CountsPerPartitionAndIgnoresOutOfRange) {
  PartitionFlows flows;
  flows.Resize(3);
  flows.OnMigration(0, 2);
  flows.OnMigration(0, 1);
  flows.OnReplicaCreate(2);
  flows.OnReplicaDrop(1);
  flows.OnMigration(9, 9);  // out of range: dropped, not UB
  EXPECT_EQ(flows.migrations_out[0], 2u);
  EXPECT_EQ(flows.migrations_in[2], 1u);
  EXPECT_EQ(flows.migrations_in[1], 1u);
  EXPECT_EQ(flows.replica_creates[2], 1u);
  EXPECT_EQ(flows.replica_drops[1], 1u);
}

TEST(TimelineTest, RingEvictsOldestTicks) {
  Timeline::Config config;
  config.max_ticks = 2;
  Timeline timeline(config);
  for (uint32_t i = 0; i < 5; ++i) timeline.Record(MakeTick(i, 1));
  EXPECT_EQ(timeline.ticks().size(), 2u);
  EXPECT_EQ(timeline.evicted(), 3u);
  EXPECT_EQ(timeline.ticks().front().interval, 3u);
  EXPECT_EQ(timeline.ticks().back().interval, 4u);
}

TEST(TimelineTest, JsonlRoundTripsAndValidates) {
  Timeline timeline;
  timeline.Record(MakeTick(0, 2));
  timeline.Record(MakeTick(1, 2));
  Result<std::vector<json::Value>> parsed =
      json::ParseLines(timeline.ToJsonl());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  const json::Value& tick = (*parsed)[0];
  EXPECT_EQ(tick.GetUint64("v"), static_cast<uint64_t>(
                                     kTimelineSchemaVersion));
  EXPECT_EQ(tick.GetString("type"), "tick");
  EXPECT_EQ(tick.GetUint64("queue_depth"), 10u);
  ASSERT_TRUE(tick.Find("partitions")->is_array());
  const json::Value& row = tick.Find("partitions")->AsArray()[1];
  EXPECT_EQ(row.GetUint64("p"), 1u);
  EXPECT_DOUBLE_EQ(row.GetDouble("load"), 0.6);
  EXPECT_TRUE(report::ValidateTimeline(*parsed).ok());
}

TEST(TimelineTest, ValidateRejectsBrokenStreams) {
  Timeline timeline;
  timeline.Record(MakeTick(1, 1));
  timeline.Record(MakeTick(1, 1));  // interval does not increase
  Result<std::vector<json::Value>> parsed =
      json::ParseLines(timeline.ToJsonl());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(report::ValidateTimeline(*parsed).ok());
}

TEST(HistogramWindowTest, PercentileOverDeltasOnly) {
  Histogram cumulative;
  HistogramWindow window;
  // First window: 100 samples at ~1ms (1000us).
  for (int i = 0; i < 100; ++i) cumulative.Record(1000);
  const double p99_first = window.WindowPercentileMs(cumulative, 99.0);
  EXPECT_GT(p99_first, 0.0);
  EXPECT_LT(p99_first, 5.0);
  // Second window: only new samples count — all at ~100ms.
  for (int i = 0; i < 10; ++i) cumulative.Record(100'000);
  const double p99_second = window.WindowPercentileMs(cumulative, 99.0);
  EXPECT_GT(p99_second, 50.0);
  // Third window: nothing recorded -> 0.
  EXPECT_EQ(window.WindowPercentileMs(cumulative, 99.0), 0.0);
}

}  // namespace
}  // namespace soap::obs
