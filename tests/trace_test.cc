#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace soap::workload {
namespace {

WorkloadSpec SmallSpec() {
  WorkloadSpec s;
  s.num_templates = 20;
  s.num_keys = 200;
  s.alpha = 1.0;
  s.seed = 2;
  return s;
}

TEST(TraceTest, RecordAndQuery) {
  WorkloadTrace trace;
  trace.Record(0, 3, 100);
  trace.Record(0, 5, 101);
  trace.Record(2, 3, 102);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.IntervalCount(), 3u);
  EXPECT_EQ(trace.EventsForInterval(0).size(), 2u);
  EXPECT_EQ(trace.EventsForInterval(1).size(), 0u);
  EXPECT_EQ(trace.EventsForInterval(2).size(), 1u);
}

TEST(TraceTest, EmptyTrace) {
  WorkloadTrace trace;
  EXPECT_EQ(trace.IntervalCount(), 0u);
  EXPECT_TRUE(trace.EventsForInterval(0).empty());
}

TEST(TraceTest, ReplayInstantiatesAgainstCatalog) {
  TemplateCatalog catalog(SmallSpec(), 5);
  WorkloadTrace trace;
  trace.Record(1, 4, 77);
  trace.Record(1, 9, 78);
  auto batch = trace.ReplayInterval(1, catalog);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0]->template_id, 4u);
  EXPECT_EQ(batch[1]->template_id, 9u);
  // Write values flow into the instantiated write ops.
  bool saw_value = false;
  for (const auto& op : batch[0]->ops) {
    if (op.kind == txn::OpKind::kWrite) {
      EXPECT_EQ(op.write_value, 77);
      saw_value = true;
    }
  }
  EXPECT_TRUE(saw_value || batch[0]->ops.empty());
}

TEST(TraceTest, SaveLoadRoundTrip) {
  WorkloadTrace trace;
  trace.Record(0, 1, -5);
  trace.Record(3, 19, 123456789);
  const std::string path = ::testing::TempDir() + "/soap_trace_rt.txt";
  ASSERT_TRUE(trace.SaveToFile(path, 20).ok());
  Result<WorkloadTrace> loaded = WorkloadTrace::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->events()[0].interval, 0u);
  EXPECT_EQ(loaded->events()[0].write_value, -5);
  EXPECT_EQ(loaded->events()[1].template_id, 19u);
  EXPECT_EQ(loaded->events()[1].write_value, 123456789);
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsMissingFile) {
  EXPECT_TRUE(
      WorkloadTrace::LoadFromFile("/no/such/trace.txt").status().IsNotFound());
}

TEST(TraceTest, LoadRejectsBadHeader) {
  const std::string path = ::testing::TempDir() + "/soap_trace_bad.txt";
  {
    std::ofstream out(path);
    out << "not-a-trace v9 10\n";
  }
  EXPECT_EQ(WorkloadTrace::LoadFromFile(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsOutOfRangeTemplate) {
  const std::string path = ::testing::TempDir() + "/soap_trace_oor.txt";
  {
    std::ofstream out(path);
    out << "soap-trace v1 10\n5 99 0\n";
  }
  EXPECT_EQ(WorkloadTrace::LoadFromFile(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TraceTest, ReplaySkipsForeignTemplates) {
  TemplateCatalog catalog(SmallSpec(), 5);  // 20 templates
  WorkloadTrace trace;
  trace.Record(0, 4, 1);
  trace.Record(0, 50, 2);  // beyond this catalog
  EXPECT_EQ(trace.ReplayInterval(0, catalog).size(), 1u);
}

// ---- Format v2 (drifting workloads) ----

std::string FirstLine(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  return line;
}

TEST(TraceTest, StationaryTraceStillSavesAsV1) {
  // Byte-compat guard: a trace with no drift data must keep the v1 format
  // so pre-drift golden traces stay byte-identical.
  WorkloadTrace trace;
  trace.Record(0, 1, 7);
  trace.Record(1, 2, 8, /*phase=*/0, TraceEvent::kNoPartner);  // same thing
  EXPECT_FALSE(trace.NeedsV2());
  const std::string path = ::testing::TempDir() + "/soap_trace_v1keep.txt";
  ASSERT_TRUE(trace.SaveToFile(path, 20).ok());
  EXPECT_EQ(FirstLine(path), "soap-trace v1 20");
  std::remove(path.c_str());
}

TEST(TraceTest, V2RoundTripPreservesDriftFields) {
  WorkloadTrace trace;
  trace.Record(0, 1, 7);                                     // plain arrival
  trace.Record(0, 3, -9, /*phase=*/2, /*partner_template=*/8);  // paired
  trace.Record(1, 5, 11, /*phase=*/2, TraceEvent::kNoPartner);
  EXPECT_TRUE(trace.NeedsV2());
  const std::string path = ::testing::TempDir() + "/soap_trace_v2.txt";
  ASSERT_TRUE(trace.SaveToFile(path, 20).ok());
  EXPECT_EQ(FirstLine(path), "soap-trace v2 20");
  Result<WorkloadTrace> loaded = WorkloadTrace::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->events()[0].phase, 0u);
  EXPECT_EQ(loaded->events()[0].partner_template, TraceEvent::kNoPartner);
  EXPECT_EQ(loaded->events()[1].phase, 2u);
  EXPECT_EQ(loaded->events()[1].partner_template, 8u);
  EXPECT_EQ(loaded->events()[1].write_value, -9);
  EXPECT_EQ(loaded->events()[2].phase, 2u);
  EXPECT_EQ(loaded->events()[2].partner_template, TraceEvent::kNoPartner);
  std::remove(path.c_str());
}

TEST(TraceTest, V1FileLoadsAsStationaryUnpaired) {
  const std::string path = ::testing::TempDir() + "/soap_trace_v1compat.txt";
  {
    std::ofstream out(path);
    out << "soap-trace v1 10\n0 4 99\n2 7 -1\n";
  }
  Result<WorkloadTrace> loaded = WorkloadTrace::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  for (const TraceEvent& ev : loaded->events()) {
    EXPECT_EQ(ev.phase, 0u);
    EXPECT_EQ(ev.partner_template, TraceEvent::kNoPartner);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, V2LoadRejectsTruncatedRecord) {
  const std::string path = ::testing::TempDir() + "/soap_trace_v2trunc.txt";
  {
    std::ofstream out(path);
    out << "soap-trace v2 10\n0 4 99 1\n";  // missing partner column
  }
  EXPECT_EQ(WorkloadTrace::LoadFromFile(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TraceTest, V2LoadRejectsOutOfRangePartner) {
  const std::string path = ::testing::TempDir() + "/soap_trace_v2oor.txt";
  {
    std::ofstream out(path);
    out << "soap-trace v2 10\n0 4 99 1 12\n";  // partner 12 >= 10 templates
  }
  EXPECT_EQ(WorkloadTrace::LoadFromFile(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TraceTest, ReplayInstantiatesPairedArrivals) {
  TemplateCatalog catalog(SmallSpec(), 5);
  WorkloadTrace trace;
  trace.Record(0, 4, 1, /*phase=*/1, /*partner_template=*/9);
  auto batch = trace.ReplayInterval(0, catalog);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0]->template_id, 4u);
  EXPECT_EQ(batch[0]->partner_template, 9u);
}

}  // namespace
}  // namespace soap::workload
