#include "src/cluster/transaction_manager.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/cluster/cluster.h"

namespace soap::cluster {
namespace {

using txn::OpKind;
using txn::Operation;
using txn::Transaction;

class TmTest : public ::testing::Test {
 protected:
  TmTest() : cluster_(&sim_, MakeConfig()), tm_(&cluster_) {
    // 30 tuples spread over 3 partitions: key k on partition k % 3.
    for (storage::TupleKey k = 0; k < 30; ++k) {
      storage::Tuple t;
      t.key = k;
      t.content = static_cast<int64_t>(k) * 10;
      EXPECT_TRUE(cluster_.LoadTuple(t, k % 3).ok());
    }
    tm_.set_completion_callback(
        [this](const Transaction& t) { completed_.push_back(t); });
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig c;
    c.num_nodes = 3;
    c.workers_per_node = 2;
    c.num_keys = 30;
    c.network.jitter = 0;
    return c;
  }

  std::unique_ptr<Transaction> MakeTxn(std::vector<Operation> ops) {
    auto t = std::make_unique<Transaction>();
    t->ops = std::move(ops);
    return t;
  }

  static Operation Read(storage::TupleKey key) {
    Operation op;
    op.kind = OpKind::kRead;
    op.key = key;
    return op;
  }
  static Operation Write(storage::TupleKey key, int64_t value) {
    Operation op;
    op.kind = OpKind::kWrite;
    op.key = key;
    op.write_value = value;
    return op;
  }
  static Operation Migrate(OpKind half, storage::TupleKey key, uint32_t from,
                           uint32_t to, uint64_t rep_id) {
    Operation op;
    op.kind = half;
    op.key = key;
    op.source_partition = from;
    op.target_partition = to;
    op.repartition_op_id = rep_id;
    return op;
  }

  sim::Simulator sim_;
  Cluster cluster_;
  TransactionManager tm_;
  std::vector<Transaction> completed_;
};

TEST_F(TmTest, SinglePartitionCommit) {
  tm_.Submit(MakeTxn({Read(0), Write(3, 99)}));  // keys 0,3 on partition 0
  sim_.Run();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_TRUE(completed_[0].committed());
  EXPECT_EQ(cluster_.storage(0).Read(3)->content, 99);
  EXPECT_EQ(tm_.counters().committed_normal, 1u);
  // Collocated: no 2PC protocol, no network messages.
  EXPECT_EQ(cluster_.tpc().stats().protocols_run, 0u);
}

TEST_F(TmTest, DistributedCommitUses2pc) {
  tm_.Submit(MakeTxn({Write(0, 1), Write(1, 2)}));  // partitions 0 and 1
  sim_.Run();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_TRUE(completed_[0].committed());
  EXPECT_EQ(cluster_.storage(0).Read(0)->content, 1);
  EXPECT_EQ(cluster_.storage(1).Read(1)->content, 2);
  EXPECT_EQ(cluster_.tpc().stats().protocols_run, 1u);
  EXPECT_GT(cluster_.network().messages_sent(), 0u);
}

TEST_F(TmTest, DistributedCostsMoreThanCollocated) {
  tm_.Submit(MakeTxn({Read(0), Read(3), Read(6), Read(9), Read(12)}));
  sim_.Run();
  const Duration collocated = cluster_.TotalBusyTime(WorkCategory::kNormal);
  const Duration collocated_latency = completed_[0].Latency();

  tm_.Submit(MakeTxn({Read(0), Read(3), Read(6), Read(9), Read(1)}));
  sim_.Run();
  const Duration distributed =
      cluster_.TotalBusyTime(WorkCategory::kNormal) - collocated;
  const Duration distributed_latency = completed_[1].Latency();

  // The paper's cost model: a distributed transaction costs ~2x (§3.1).
  const double ratio = static_cast<double>(distributed) /
                       static_cast<double>(collocated);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.5);
  EXPECT_GT(distributed_latency, collocated_latency);
}

TEST_F(TmTest, WritesInvisibleUntilCommit) {
  // Buffered writes: a value is applied only at commit.
  bool checked_mid_flight = false;
  tm_.Submit(MakeTxn({Write(0, 42), Read(3)}));
  sim_.At(Millis(2), [&] {
    // Transaction started (begin=1ms) but is still executing.
    EXPECT_EQ(cluster_.storage(0).Read(0)->content, 0);
    checked_mid_flight = true;
  });
  sim_.Run();
  EXPECT_TRUE(checked_mid_flight);
  EXPECT_EQ(cluster_.storage(0).Read(0)->content, 42);
}

TEST_F(TmTest, MigrationMovesTupleAndRetargetsRouting) {
  auto t = MakeTxn({Migrate(OpKind::kMigrateInsert, 0, 0, 1, 1),
                    Migrate(OpKind::kMigrateDelete, 0, 0, 1, 1)});
  t->is_repartition = true;
  tm_.Submit(std::move(t));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_TRUE(completed_[0].committed());
  EXPECT_FALSE(cluster_.storage(0).Contains(0));
  EXPECT_TRUE(cluster_.storage(1).Contains(0));
  EXPECT_EQ(cluster_.storage(1).Read(0)->content, 0);
  EXPECT_EQ(*cluster_.routing_table().GetPrimary(0), 1u);
  EXPECT_EQ(tm_.counters().repartition_ops_applied, 1u);
  EXPECT_EQ(tm_.counters().committed_repartition, 1u);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(TmTest, StaleMigrationSkipped) {
  // The tuple already lives on partition 1: the plan unit is stale.
  ASSERT_TRUE(cluster_.routing_table().Migrate(0, 0, 1).ok());
  cluster_.storage(1).BulkLoad(*cluster_.storage(0).Read(0));
  ASSERT_TRUE(cluster_.storage(0).table().Get(0).ok());
  storage::Tuple moved = *cluster_.storage(0).Read(0);
  (void)moved;
  // Remove from 0 to complete the manual migration.
  ASSERT_TRUE(cluster_.storage(0).ApplyErase(99, 0).ok());

  auto t = MakeTxn({Migrate(OpKind::kMigrateInsert, 0, 0, 1, 1),
                    Migrate(OpKind::kMigrateDelete, 0, 0, 1, 1)});
  t->is_repartition = true;
  tm_.Submit(std::move(t));
  sim_.Run();
  EXPECT_TRUE(completed_[0].committed());
  EXPECT_EQ(tm_.counters().repartition_ops_applied, 0u);  // skipped
  EXPECT_TRUE(cluster_.storage(1).Contains(0));
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(TmTest, SelfMigrationIsANoOp) {
  // A malformed plan unit migrating a tuple onto its own partition must
  // not destroy the only copy.
  auto t = MakeTxn({Migrate(OpKind::kMigrateInsert, 0, 0, 0, 1),
                    Migrate(OpKind::kMigrateDelete, 0, 0, 0, 1)});
  t->is_repartition = true;
  tm_.Submit(std::move(t));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_TRUE(completed_[0].committed());
  EXPECT_EQ(tm_.counters().repartition_ops_applied, 0u);  // skipped
  EXPECT_TRUE(cluster_.storage(0).Contains(0));
  EXPECT_EQ(*cluster_.routing_table().GetPrimary(0), 0u);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(TmTest, PiggybackedMigrationAppliedWithCarrier) {
  auto t = MakeTxn({Read(3), Write(6, 5)});
  t->piggyback_ops = {Migrate(OpKind::kMigrateInsert, 0, 0, 2, 7),
                      Migrate(OpKind::kMigrateDelete, 0, 0, 2, 7)};
  t->piggyback_source = 1;
  tm_.Submit(std::move(t));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_TRUE(completed_[0].committed());
  EXPECT_EQ(*cluster_.routing_table().GetPrimary(0), 2u);
  EXPECT_EQ(tm_.counters().piggybacked_ops_applied, 1u);
  EXPECT_EQ(tm_.counters().repartition_ops_applied, 1u);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(TmTest, VoteAbortRollsBack) {
  tm_.set_vote_abort_injector(
      [](const Transaction&, uint32_t partition) { return partition == 1; });
  tm_.Submit(MakeTxn({Write(0, 1), Write(1, 2)}));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_TRUE(completed_[0].aborted());
  EXPECT_EQ(completed_[0].abort_reason, txn::AbortReason::kVoteAbort);
  // No effects applied.
  EXPECT_EQ(cluster_.storage(0).Read(0)->content, 0);
  EXPECT_EQ(cluster_.storage(1).Read(1)->content, 10);
  EXPECT_EQ(tm_.counters().aborted_normal, 1u);
}

TEST_F(TmTest, QueueTimeoutFailsStaleTransactions) {
  // Saturate admission so a later transaction rots in the queue.
  ClusterConfig tiny = MakeConfig();
  tiny.max_inflight = 1;
  tiny.costs.txn_timeout = Seconds(1);
  sim::Simulator sim;
  Cluster cluster(&sim, tiny);
  for (storage::TupleKey k = 0; k < 30; ++k) {
    storage::Tuple t;
    t.key = k;
    ASSERT_TRUE(cluster.LoadTuple(t, k % 3).ok());
  }
  TransactionManager tm(&cluster);
  std::vector<Transaction> done;
  tm.set_completion_callback(
      [&](const Transaction& t) { done.push_back(t); });

  // First transaction holds the only slot for 2 virtual seconds by having
  // many queries... simpler: submit a long chain of transactions; the
  // tail waits > 1s behind the single slot.
  for (int i = 0; i < 300; ++i) {
    auto t = std::make_unique<Transaction>();
    t->ops = {Read(0), Read(3), Read(6)};
    tm.Submit(std::move(t));
  }
  sim.Run();
  EXPECT_EQ(done.size(), 300u);
  EXPECT_GT(tm.counters().aborts_queue_timeout, 0u);
  EXPECT_EQ(tm.counters().committed_normal + tm.counters().aborted_normal,
            300u);
}

TEST_F(TmTest, WriteConflictSerializesNotAborts) {
  // Two writers to the same key commit in some order; both succeed and
  // the committed value is one of theirs.
  tm_.Submit(MakeTxn({Write(0, 111)}));
  tm_.Submit(MakeTxn({Write(0, 222)}));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 2u);
  EXPECT_TRUE(completed_[0].committed());
  EXPECT_TRUE(completed_[1].committed());
  const int64_t v = cluster_.storage(0).Read(0)->content;
  EXPECT_TRUE(v == 111 || v == 222);
  EXPECT_EQ(cluster_.storage(0).Read(0)->version, 2u);
}

TEST_F(TmTest, MigrationBlocksConcurrentWriterUntilCommit) {
  // A migration holds X on key 0; a writer must wait and then commit to
  // the NEW location.
  auto mig = MakeTxn({Migrate(OpKind::kMigrateInsert, 0, 0, 1, 1),
                      Migrate(OpKind::kMigrateDelete, 0, 0, 1, 1)});
  mig->is_repartition = true;
  tm_.Submit(std::move(mig));
  tm_.Submit(MakeTxn({Write(0, 777)}));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 2u);
  EXPECT_TRUE(completed_[0].committed());
  EXPECT_TRUE(completed_[1].committed());
  EXPECT_EQ(*cluster_.routing_table().GetPrimary(0), 1u);
  EXPECT_EQ(cluster_.storage(1).Read(0)->content, 777);
  EXPECT_TRUE(cluster_.CheckConsistency().ok());
}

TEST_F(TmTest, LowPriorityWaitsForIdle) {
  // Keep the system busy with normal work, then submit a low-priority
  // repartition transaction: it must only run once the normal work has
  // fully drained (the AfterAll idle rule, §3.2).
  for (int i = 0; i < 5; ++i) {
    tm_.Submit(MakeTxn({Read(0), Read(3), Read(6)}));
  }
  auto low = MakeTxn({Read(9)});
  low->priority = txn::TxnPriority::kLow;
  low->is_repartition = true;
  tm_.Submit(std::move(low));
  EXPECT_FALSE(tm_.IdleForLowPriority());
  sim_.Run();
  ASSERT_EQ(completed_.size(), 6u);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(completed_[i].is_repartition);
  EXPECT_TRUE(completed_[5].is_repartition);
}

TEST_F(TmTest, ReadOfVanishedTupleStillCommits) {
  // UPDATE/SELECT affecting 0 rows is legal SQL, not an error.
  ASSERT_TRUE(cluster_.storage(0).ApplyErase(99, 0).ok());
  // Leave routing stale on purpose: the read routes to partition 0 and
  // finds nothing.
  tm_.Submit(MakeTxn({Read(0)}));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_TRUE(completed_[0].committed());
}

TEST_F(TmTest, EmptyTransactionCommits) {
  tm_.Submit(MakeTxn({}));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_TRUE(completed_[0].committed());
}

TEST_F(TmTest, CountersTrackSubmissions) {
  tm_.Submit(MakeTxn({Read(0)}));
  auto rep = MakeTxn({Migrate(OpKind::kMigrateInsert, 1, 1, 0, 1),
                      Migrate(OpKind::kMigrateDelete, 1, 1, 0, 1)});
  rep->is_repartition = true;
  tm_.Submit(std::move(rep));
  sim_.Run();
  EXPECT_EQ(tm_.counters().submitted_normal, 1u);
  EXPECT_EQ(tm_.counters().submitted_repartition, 1u);
  EXPECT_EQ(tm_.counters().total_submitted(), 2u);
}

TEST_F(TmTest, LatencyIsPositiveAndOrdered) {
  tm_.Submit(MakeTxn({Read(0), Read(3)}));
  sim_.Run();
  const Transaction& t = completed_[0];
  EXPECT_GT(t.Latency(), 0);
  EXPECT_GE(t.start_time, t.submit_time);
  EXPECT_GT(t.finish_time, t.start_time);
}

TEST_F(TmTest, PromoteQueuedChangesPriority) {
  ClusterConfig cfg = MakeConfig();
  cfg.max_inflight = 1;
  sim::Simulator sim;
  Cluster cluster(&sim, cfg);
  for (storage::TupleKey k = 0; k < 30; ++k) {
    storage::Tuple t;
    t.key = k;
    ASSERT_TRUE(cluster.LoadTuple(t, k % 3).ok());
  }
  TransactionManager tm(&cluster);
  std::vector<Transaction> done;
  tm.set_completion_callback([&](const Transaction& t) { done.push_back(t); });

  tm.Submit([&] {
    auto t = std::make_unique<Transaction>();
    t->ops = {Read(0)};
    return t;
  }());  // occupies the only slot
  auto low = std::make_unique<Transaction>();
  low->ops = {Read(1)};
  low->priority = txn::TxnPriority::kLow;
  low->is_repartition = true;
  const txn::TxnId low_id = tm.Submit(std::move(low));
  auto normal = std::make_unique<Transaction>();
  normal->ops = {Read(2)};
  tm.Submit(std::move(normal));

  // Promote the low transaction to high: it should now run before the
  // queued normal one.
  EXPECT_TRUE(tm.PromoteQueued(low_id, txn::TxnPriority::kHigh));
  sim.Run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[1].id, low_id);
  EXPECT_FALSE(tm.PromoteQueued(low_id, txn::TxnPriority::kHigh));
}

// cc-mode matrix: the core commit paths hold under either concurrency
// control engine. 2PL is the seed behavior; under MVCC reads come off
// snapshots (no shared locks) while writers still lock and 2PC still
// coordinates distributed commits.
Operation CcRead(storage::TupleKey key) {
  Operation op;
  op.kind = OpKind::kRead;
  op.key = key;
  return op;
}
Operation CcWrite(storage::TupleKey key, int64_t value) {
  Operation op;
  op.kind = OpKind::kWrite;
  op.key = key;
  op.write_value = value;
  return op;
}

class CcMatrixTest
    : public ::testing::TestWithParam<mvcc::ConcurrencyControl> {
 protected:
  void SetUp() override {
    ClusterConfig c;
    c.num_nodes = 3;
    c.workers_per_node = 2;
    c.num_keys = 30;
    c.network.jitter = 0;
    c.isolation = IsolationLevel::kSerializable;
    c.cc = GetParam();
    cluster_ = std::make_unique<Cluster>(&sim_, c);
    tm_ = std::make_unique<TransactionManager>(cluster_.get());
    for (storage::TupleKey k = 0; k < 30; ++k) {
      storage::Tuple t;
      t.key = k;
      t.content = static_cast<int64_t>(k) * 10;
      ASSERT_TRUE(cluster_->LoadTuple(t, k % 3).ok());
    }
    tm_->set_completion_callback(
        [this](const Transaction& t) { completed_.push_back(t); });
  }

  bool Mvcc() const { return GetParam() == mvcc::ConcurrencyControl::kMvcc; }

  std::unique_ptr<Transaction> MakeTxn(std::vector<Operation> ops) {
    auto t = std::make_unique<Transaction>();
    t->ops = std::move(ops);
    return t;
  }

  sim::Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<TransactionManager> tm_;
  std::vector<Transaction> completed_;
};

TEST_P(CcMatrixTest, SinglePartitionCommitAppliesTheWrite) {
  tm_->Submit(MakeTxn({CcRead(0), CcWrite(3, 99)}));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_TRUE(completed_[0].committed());
  EXPECT_EQ(cluster_->storage(0).Read(3)->content, 99);
  EXPECT_EQ(cluster_->tpc().stats().protocols_run, 0u);
  if (Mvcc()) {
    // The commit also installed a version readable by later snapshots.
    EXPECT_EQ(cluster_->versions().ChainLength(3), 1u);
    EXPECT_EQ(cluster_->versions().ReadAsOf(3, sim_.Now() + 1).value, 99);
  } else {
    EXPECT_FALSE(cluster_->mvcc_enabled());  // no version store exists
  }
}

TEST_P(CcMatrixTest, DistributedCommitUses2pcUnderEitherEngine) {
  tm_->Submit(MakeTxn({CcWrite(0, 1), CcWrite(1, 2)}));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_TRUE(completed_[0].committed());
  EXPECT_EQ(cluster_->storage(0).Read(0)->content, 1);
  EXPECT_EQ(cluster_->storage(1).Read(1)->content, 2);
  EXPECT_EQ(cluster_->tpc().stats().protocols_run, 1u);
}

TEST_P(CcMatrixTest, ReadOnlyTxnLocksOnlyUnder2pl) {
  tm_->Submit(MakeTxn({CcRead(0), CcRead(1), CcRead(5)}));
  sim_.Run();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_TRUE(completed_[0].committed());
  const uint64_t acquires = cluster_->lock_manager().stats().acquires;
  if (Mvcc()) {
    EXPECT_EQ(acquires, 0u);  // snapshot reads are lock-free
    EXPECT_EQ(cluster_->snapshots().active_count(), 0u);  // and released
  } else {
    EXPECT_GT(acquires, 0u);  // serializable 2PL takes shared read locks
  }
}

INSTANTIATE_TEST_SUITE_P(
    CcModes, CcMatrixTest,
    ::testing::Values(mvcc::ConcurrencyControl::k2PL,
                      mvcc::ConcurrencyControl::kMvcc),
    [](const ::testing::TestParamInfo<mvcc::ConcurrencyControl>& info) {
      return info.param == mvcc::ConcurrencyControl::kMvcc ? "Mvcc" : "TwoPl";
    });

}  // namespace
}  // namespace soap::cluster
