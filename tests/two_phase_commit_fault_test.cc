// Fault-handling tests for the 2PC driver: timeouts, resends, presumed
// abort, deduplication and coordinator death, plus a randomized property
// test under message loss and participant death (satellite of the
// soap::fault PR): every protocol terminates exactly once and the stats
// balance, no matter which messages vanish.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/random.h"
#include "src/txn/two_phase_commit.h"

namespace soap::txn {
namespace {

/// Drops each message with probability `p` (deterministic per seed);
/// optionally duplicates everything instead.
class LossyHooks : public sim::NetworkFaultHooks {
 public:
  LossyHooks(double p, uint64_t seed, bool duplicate_all = false)
      : p_(p), rng_(seed), duplicate_all_(duplicate_all) {}

  sim::MsgFate OnMessage(sim::NodeId, sim::NodeId, sim::MsgClass) override {
    sim::MsgFate fate;
    if (p_ > 0.0 && rng_.NextBernoulli(p_)) {
      fate.action = sim::MsgFate::Action::kDrop;
      return fate;
    }
    fate.duplicate = duplicate_all_;
    return fate;
  }
  void Park(sim::NodeId, sim::InlineFn) override {
    FAIL() << "nothing should park in these tests";
  }

 private:
  double p_;
  Rng rng_;
  bool duplicate_all_;
};

struct FaultHarness {
  sim::Simulator sim;
  sim::Network network;
  TwoPhaseCommitDriver driver;

  explicit FaultHarness(TpcFaultConfig config = FastConfig())
      : network(&sim, MakeNetConfig()), driver(&sim, &network) {
    driver.EnableFaultHandling(config);
  }

  static sim::NetworkConfig MakeNetConfig() {
    sim::NetworkConfig c;
    c.base_latency = Millis(1);
    c.per_kb = 0;
    c.jitter = 0;
    return c;
  }

  /// Short timeouts so tests stay fast.
  static TpcFaultConfig FastConfig() {
    TpcFaultConfig c;
    c.enabled = true;
    c.prepare_timeout = Millis(50);
    c.ack_timeout = Millis(50);
    c.max_resends = 2;
    c.backoff = 2.0;
    c.jitter = Millis(1);
    c.seed = 0xfau;
    return c;
  }

  /// `dead == true` models a crashed participant: its hooks swallow every
  /// continuation and nothing ever comes back.
  TpcParticipant MakeParticipant(sim::NodeId node, bool vote,
                                 bool dead = false) {
    TpcParticipant p;
    p.node = node;
    p.prepare = [this, vote, dead](std::function<void(bool)> cb) {
      if (dead) return;
      sim.After(Millis(2), [cb = std::move(cb), vote] { cb(vote); });
    };
    p.commit = [this, dead](std::function<void()> cb) {
      if (dead) return;
      sim.After(Millis(2), std::move(cb));
    };
    p.abort = [this, dead](std::function<void()> cb) {
      if (dead) return;
      sim.After(Millis(1), std::move(cb));
    };
    return p;
  }
};

TEST(TwoPhaseCommitFaultTest, PrepareTimeoutPresumesAbort) {
  FaultHarness h;
  bool done = false;
  bool committed = true;
  h.driver.Run(1, 0,
               {h.MakeParticipant(1, true),
                h.MakeParticipant(2, true, /*dead=*/true)},
               [&](bool c) {
                 done = true;
                 committed = c;
               });
  h.sim.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(committed);  // the silent participant forces presumed abort
  EXPECT_GE(h.driver.stats().resends, 1u);
  EXPECT_EQ(h.driver.stats().prepare_timeouts, 1u);
  EXPECT_EQ(h.driver.stats().aborted, 1u);
  EXPECT_EQ(h.driver.live_instances(), 0u);
}

TEST(TwoPhaseCommitFaultTest, ResendRecoversFromDroppedMessages) {
  FaultHarness h;
  // Drop roughly half of all messages; the resend path must still land
  // the protocol. High loss with only 2 resends can legitimately abort,
  // so assert termination + balance rather than commit.
  LossyHooks hooks(0.5, /*seed=*/11);
  h.network.set_fault_hooks(&hooks);
  int done_count = 0;
  h.driver.Run(1, 0, {h.MakeParticipant(1, true), h.MakeParticipant(2, true)},
               [&](bool) { ++done_count; });
  h.sim.Run();
  EXPECT_EQ(done_count, 1);
  EXPECT_EQ(h.driver.stats().protocols_run,
            h.driver.stats().committed + h.driver.stats().aborted);
  EXPECT_EQ(h.driver.live_instances(), 0u);
  EXPECT_GE(h.driver.stats().resends, 1u);
}

TEST(TwoPhaseCommitFaultTest, DuplicatedMessagesAreDeduplicated) {
  FaultHarness h;
  LossyHooks hooks(0.0, 1, /*duplicate_all=*/true);
  h.network.set_fault_hooks(&hooks);
  int done_count = 0;
  bool committed = false;
  h.driver.Run(1, 0, {h.MakeParticipant(1, true), h.MakeParticipant(2, true)},
               [&](bool c) {
                 ++done_count;
                 committed = c;
               });
  h.sim.Run();
  EXPECT_EQ(done_count, 1);  // duplicate votes/acks must not double-finish
  EXPECT_TRUE(committed);
  EXPECT_EQ(h.driver.stats().committed, 1u);
  EXPECT_EQ(h.driver.live_instances(), 0u);
}

TEST(TwoPhaseCommitFaultTest, CoordinatorCrashAbortsUndecidedInstance) {
  FaultHarness h;
  bool done = false;
  bool committed = true;
  h.driver.Run(1, /*coordinator=*/0,
               {h.MakeParticipant(1, true), h.MakeParticipant(2, true)},
               [&](bool c) {
                 done = true;
                 committed = c;
               });
  // Crash the coordinator before any vote can arrive (votes need >= 3ms).
  h.sim.After(Millis(1), [&] { h.driver.OnNodeCrash(0); });
  h.sim.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(committed);
  EXPECT_EQ(h.driver.stats().coordinator_crash_aborts, 1u);
  EXPECT_EQ(h.driver.live_instances(), 0u);
}

TEST(TwoPhaseCommitFaultTest, CoordinatorCrashSparesDecidedInstance) {
  FaultHarness h;
  bool done = false;
  bool committed = false;
  h.driver.Run(1, 0, {h.MakeParticipant(1, true), h.MakeParticipant(2, true)},
               [&](bool c) {
                 done = true;
                 committed = c;
               });
  // By 8ms both votes are in and the decision is made; the crash must not
  // revoke a decided commit (participants may already have applied it).
  h.sim.After(Millis(8), [&] { h.driver.OnNodeCrash(0); });
  h.sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(committed);
  EXPECT_EQ(h.driver.stats().coordinator_crash_aborts, 0u);
}

TEST(TwoPhaseCommitFaultTest, OnePhaseInstanceAbortsWithItsCoordinator) {
  FaultHarness h;
  bool done = false;
  bool committed = true;
  // Single collocated participant whose commit work dies with the node.
  h.driver.Run(1, /*coordinator=*/2,
               {h.MakeParticipant(2, true, /*dead=*/true)},
               [&](bool c) {
                 done = true;
                 committed = c;
               });
  h.sim.After(Millis(1), [&] { h.driver.OnNodeCrash(2); });
  h.sim.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(committed);
  EXPECT_EQ(h.driver.live_instances(), 0u);
}

// The randomized property: across seeds, loss rates, participant counts,
// votes and dead participants, every protocol (a) terminates without
// hanging the simulation, (b) completes its `done` exactly once, and
// (c) keeps protocols_run == committed + aborted with no live instance
// left behind.
TEST(TwoPhaseCommitFaultTest, PropertyTerminatesExactlyOnceUnderChaos) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 977 + 3);
    FaultHarness h;
    const double loss = 0.6 * rng.NextDouble();
    LossyHooks hooks(loss, seed ^ 0xabcdef);
    h.network.set_fault_hooks(&hooks);

    const int protocols = 1 + static_cast<int>(rng.NextUint64(4));
    std::vector<int> done_counts(protocols, 0);
    for (int i = 0; i < protocols; ++i) {
      const auto n_participants = 1 + rng.NextUint64(3);
      std::vector<TpcParticipant> participants;
      for (uint64_t j = 0; j < n_participants; ++j) {
        const bool vote = rng.NextBernoulli(0.9);
        const bool dead = rng.NextBernoulli(0.2);
        participants.push_back(h.MakeParticipant(
            static_cast<sim::NodeId>(1 + j), vote, dead));
      }
      h.driver.Run(static_cast<TxnId>(i + 1), /*coordinator=*/0,
                   std::move(participants),
                   [&done_counts, i](bool) { ++done_counts[i]; });
    }
    h.sim.Run();  // must drain — a hang would loop forever in virtual time

    for (int i = 0; i < protocols; ++i) {
      EXPECT_EQ(done_counts[i], 1)
          << "seed=" << seed << " protocol=" << i << " loss=" << loss;
    }
    const TpcStats& s = h.driver.stats();
    EXPECT_EQ(s.protocols_run, s.committed + s.aborted) << "seed=" << seed;
    EXPECT_EQ(s.protocols_run, static_cast<uint64_t>(protocols));
    EXPECT_EQ(h.driver.live_instances(), 0u) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace soap::txn
