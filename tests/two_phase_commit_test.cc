#include "src/txn/two_phase_commit.h"

#include <gtest/gtest.h>

#include <vector>

namespace soap::txn {
namespace {

struct Harness {
  sim::Simulator sim;
  sim::NetworkConfig net_config;
  sim::Network network;
  TwoPhaseCommitDriver driver;

  Harness() : network(&sim, MakeConfig()), driver(&sim, &network) {}

  static sim::NetworkConfig MakeConfig() {
    sim::NetworkConfig c;
    c.base_latency = Millis(1);
    c.per_kb = 0;
    c.jitter = 0;
    return c;
  }

  /// A participant that votes `vote` after `work` of virtual time and
  /// records its phase transitions.
  TpcParticipant MakeParticipant(sim::NodeId node, bool vote,
                                 std::vector<std::string>* log) {
    TpcParticipant p;
    p.node = node;
    p.prepare = [this, vote, node, log](std::function<void(bool)> cb) {
      log->push_back("prepare@" + std::to_string(node));
      sim.After(Millis(2), [cb = std::move(cb), vote] { cb(vote); });
    };
    p.commit = [this, node, log](std::function<void()> cb) {
      log->push_back("commit@" + std::to_string(node));
      sim.After(Millis(2), std::move(cb));
    };
    p.abort = [this, node, log](std::function<void()> cb) {
      log->push_back("abort@" + std::to_string(node));
      sim.After(Millis(1), std::move(cb));
    };
    return p;
  }
};

TEST(TwoPhaseCommitTest, AllYesCommits) {
  Harness h;
  std::vector<std::string> log;
  bool committed = false;
  bool done = false;
  h.driver.Run(1, /*coordinator=*/0,
               {h.MakeParticipant(1, true, &log),
                h.MakeParticipant(2, true, &log)},
               [&](bool c) {
                 committed = c;
                 done = true;
               });
  h.sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(committed);
  // Both prepared, both committed, nobody aborted.
  EXPECT_EQ(std::count_if(log.begin(), log.end(),
                          [](const std::string& s) {
                            return s.rfind("prepare", 0) == 0;
                          }),
            2);
  EXPECT_EQ(std::count_if(log.begin(), log.end(),
                          [](const std::string& s) {
                            return s.rfind("commit", 0) == 0;
                          }),
            2);
  EXPECT_EQ(h.driver.stats().committed, 1u);
}

TEST(TwoPhaseCommitTest, AnyNoAborts) {
  Harness h;
  std::vector<std::string> log;
  bool committed = true;
  h.driver.Run(1, 0,
               {h.MakeParticipant(1, true, &log),
                h.MakeParticipant(2, false, &log),
                h.MakeParticipant(3, true, &log)},
               [&](bool c) { committed = c; });
  h.sim.Run();
  EXPECT_FALSE(committed);
  EXPECT_EQ(std::count_if(log.begin(), log.end(),
                          [](const std::string& s) {
                            return s.rfind("abort", 0) == 0;
                          }),
            3);
  EXPECT_EQ(std::count_if(log.begin(), log.end(),
                          [](const std::string& s) {
                            return s.rfind("commit", 0) == 0;
                          }),
            0);
  EXPECT_EQ(h.driver.stats().aborted, 1u);
}

TEST(TwoPhaseCommitTest, PreparesPrecedeCommits) {
  Harness h;
  std::vector<std::string> log;
  h.driver.Run(1, 0,
               {h.MakeParticipant(1, true, &log),
                h.MakeParticipant(2, true, &log)},
               [](bool) {});
  h.sim.Run();
  // The last prepare must come before the first commit.
  size_t last_prepare = 0, first_commit = log.size();
  for (size_t i = 0; i < log.size(); ++i) {
    if (log[i].rfind("prepare", 0) == 0) last_prepare = i;
    if (log[i].rfind("commit", 0) == 0 && i < first_commit) first_commit = i;
  }
  EXPECT_LT(last_prepare, first_commit);
}

TEST(TwoPhaseCommitTest, SingleLocalParticipantSkipsMessages) {
  Harness h;
  std::vector<std::string> log;
  bool committed = false;
  h.driver.Run(1, /*coordinator=*/2, {h.MakeParticipant(2, true, &log)},
               [&](bool c) { committed = c; });
  h.sim.Run();
  EXPECT_TRUE(committed);
  EXPECT_EQ(h.network.messages_sent(), 0u);  // one-phase optimization
  // No prepare phase needed either.
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "commit@2");
}

TEST(TwoPhaseCommitTest, MessageCountForNParticipants) {
  Harness h;
  std::vector<std::string> log;
  h.driver.Run(1, 0,
               {h.MakeParticipant(1, true, &log),
                h.MakeParticipant(2, true, &log),
                h.MakeParticipant(3, true, &log)},
               [](bool) {});
  h.sim.Run();
  // prepare + vote + decision + ack per participant.
  EXPECT_EQ(h.driver.stats().messages, 12u);
}

TEST(TwoPhaseCommitTest, CommitTakesAtLeastTwoRoundTrips) {
  Harness h;
  std::vector<std::string> log;
  SimTime done_at = 0;
  h.driver.Run(1, 0, {h.MakeParticipant(1, true, &log)},
               [&](bool) { done_at = h.sim.Now(); });
  h.sim.Run();
  // 4 x 1ms latency + 2ms prepare + 2ms commit.
  EXPECT_EQ(done_at, Millis(8));
}

TEST(TwoPhaseCommitTest, ConcurrentProtocolsIsolated) {
  Harness h;
  std::vector<std::string> log1, log2;
  int commits = 0;
  h.driver.Run(1, 0, {h.MakeParticipant(1, true, &log1)},
               [&](bool c) { commits += c; });
  h.driver.Run(2, 0, {h.MakeParticipant(2, true, &log2)},
               [&](bool c) { commits += c; });
  h.sim.Run();
  EXPECT_EQ(commits, 2);
  EXPECT_EQ(h.driver.stats().protocols_run, 2u);
}

}  // namespace
}  // namespace soap::txn
