#include "src/core/txn_packager.h"

#include <gtest/gtest.h>

#include <set>

namespace soap::core {
namespace {

/// Small end-to-end fixture: catalog -> routing -> history -> plan.
struct Fixture {
  workload::WorkloadSpec spec;
  workload::TemplateCatalog catalog;
  repartition::CostModel cost_model;
  router::RoutingTable routing;
  repartition::Optimizer optimizer;
  workload::WorkloadHistory history;
  TxnPackager packager;

  Fixture()
      : spec(MakeSpec()),
        catalog(spec, 5),
        cost_model(cluster::ExecutionCosts{}, spec.queries_per_txn),
        routing(spec.num_keys),
        optimizer(&catalog, &cost_model, 10),
        history(spec.num_templates, 10),
        packager(&cost_model) {
    for (storage::TupleKey k = 0; k < spec.num_keys; ++k) {
      EXPECT_TRUE(routing.SetPrimary(k, catalog.InitialPartitionOf(k)).ok());
    }
  }

  static workload::WorkloadSpec MakeSpec() {
    workload::WorkloadSpec s;
    s.distribution = workload::PopularityDist::kZipf;
    s.num_templates = 50;
    s.num_keys = 500;
    s.alpha = 1.0;
    s.seed = 21;
    return s;
  }

  /// Records `count` observations of template t, then closes an interval.
  void Observe(std::initializer_list<std::pair<uint32_t, int>> counts) {
    for (auto [t, n] : counts) {
      for (int i = 0; i < n; ++i) history.Record(t);
    }
    history.CloseInterval(Seconds(20));
  }

  std::vector<RepartitionTxn> Package() {
    return packager.PackageAndRank(optimizer.DerivePlan(routing), history,
                                   optimizer, routing);
  }
};

TEST(TxnPackagerTest, EveryPlanOpInExactlyOneTxn) {
  Fixture f;
  f.Observe({{0, 100}, {1, 50}, {2, 10}});
  repartition::RepartitionPlan plan = f.optimizer.DerivePlan(f.routing);
  std::vector<RepartitionTxn> ranked = f.Package();
  std::set<uint64_t> seen;
  size_t total = 0;
  for (const RepartitionTxn& rt : ranked) {
    for (const auto& op : rt.ops) {
      EXPECT_TRUE(seen.insert(op.id).second) << "op " << op.id << " twice";
      ++total;
    }
  }
  EXPECT_EQ(total, plan.size());
}

TEST(TxnPackagerTest, OneTxnPerBenefitingTemplate) {
  Fixture f;
  f.Observe({{0, 10}});
  std::vector<RepartitionTxn> ranked = f.Package();
  std::set<uint32_t> beneficiaries;
  for (const RepartitionTxn& rt : ranked) {
    EXPECT_TRUE(beneficiaries.insert(rt.beneficiary_template).second);
    // Group heuristic: all ops of a txn repartition that template's data.
    for (const auto& op : rt.ops) {
      ASSERT_EQ(op.affected_templates.size(), 1u);
      EXPECT_EQ(op.affected_templates[0], rt.beneficiary_template);
    }
  }
  EXPECT_EQ(ranked.size(), f.catalog.distributed_count());
}

TEST(TxnPackagerTest, RankedByDensityDescending) {
  Fixture f;
  f.Observe({{0, 100}, {3, 77}, {7, 20}, {9, 5}});
  std::vector<RepartitionTxn> ranked = f.Package();
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].density, ranked[i].density);
  }
}

TEST(TxnPackagerTest, HotterTemplateRanksFirst) {
  Fixture f;
  f.Observe({{5, 500}, {6, 1}});
  std::vector<RepartitionTxn> ranked = f.Package();
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].beneficiary_template, 5u);
  EXPECT_GT(ranked[0].benefit, 0.0);
}

TEST(TxnPackagerTest, BenefitMatchesFrequencyTimesGain) {
  Fixture f;
  f.Observe({{4, 40}});  // 2 txn/s over a 20s interval
  std::vector<RepartitionTxn> ranked = f.Package();
  const RepartitionTxn* rt = nullptr;
  for (const auto& r : ranked) {
    if (r.beneficiary_template == 4) rt = &r;
  }
  ASSERT_NE(rt, nullptr);
  const double gain =
      static_cast<double>(f.optimizer.TemplateGain(4, f.routing));
  EXPECT_NEAR(rt->benefit, 2.0 * gain, 1e-6);
  EXPECT_NEAR(rt->density, rt->benefit / rt->cost, 1e-12);
}

TEST(TxnPackagerTest, UnobservedTemplatesStillPackaged) {
  // Plan completeness: templates never seen in the history have zero
  // benefit but their migrations must still be scheduled.
  Fixture f;
  f.Observe({{0, 10}});
  std::vector<RepartitionTxn> ranked = f.Package();
  EXPECT_EQ(ranked.size(), f.catalog.distributed_count());
  size_t zero_benefit = 0;
  for (const auto& rt : ranked) {
    if (rt.benefit == 0.0) ++zero_benefit;
  }
  EXPECT_EQ(zero_benefit, ranked.size() - 1);
  // And the zero-benefit ones rank behind the observed one.
  EXPECT_EQ(ranked[0].beneficiary_template, 0u);
}

TEST(TxnPackagerTest, CostComesFromCostModel) {
  Fixture f;
  f.Observe({{0, 10}});
  std::vector<RepartitionTxn> ranked = f.Package();
  for (const auto& rt : ranked) {
    EXPECT_DOUBLE_EQ(
        rt.cost,
        static_cast<double>(f.cost_model.RepartitionTxnCost(rt.ops)));
  }
}

TEST(TxnPackagerTest, EmptyPlanYieldsNoTxns) {
  Fixture f;
  f.Observe({{0, 10}});
  repartition::RepartitionPlan empty;
  EXPECT_TRUE(
      f.packager.PackageAndRank(empty, f.history, f.optimizer, f.routing)
          .empty());
}

TEST(TxnPackagerTest, SingleGiantModeMakesOneTxn) {
  Fixture f;
  f.Observe({{0, 10}});
  repartition::RepartitionPlan plan = f.optimizer.DerivePlan(f.routing);
  auto ranked = f.packager.PackageAndRank(plan, f.history, f.optimizer,
                                          f.routing,
                                          PackagingMode::kSingleGiantTxn);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].ops.size(), plan.size());
}

TEST(TxnPackagerTest, PerOperationModeMakesOneTxnPerUnit) {
  Fixture f;
  f.Observe({{0, 10}});
  repartition::RepartitionPlan plan = f.optimizer.DerivePlan(f.routing);
  auto ranked = f.packager.PackageAndRank(plan, f.history, f.optimizer,
                                          f.routing,
                                          PackagingMode::kPerOperation);
  EXPECT_EQ(ranked.size(), plan.size());
  for (const auto& rt : ranked) EXPECT_EQ(rt.ops.size(), 1u);
}

TEST(TxnPackagerTest, RangeModeMergesContiguousRuns) {
  // Hand-built plan: keys 10,11,12 move 1->0 (one range); key 14 moves
  // 1->0 (gap: its own range); key 15 moves 2->0 (endpoint change: own
  // range even though contiguous with 14).
  Fixture f;
  f.Observe({{0, 10}});
  repartition::RepartitionPlan plan;
  auto add = [&plan](storage::TupleKey key, uint32_t src) {
    repartition::RepartitionOp op;
    op.id = plan.size() + 1;
    op.key = key;
    op.source_partition = src;
    op.target_partition = 0;
    op.affected_templates.push_back(0);
    plan.ops.push_back(op);
  };
  add(12, 1);
  add(10, 1);
  add(11, 1);
  add(14, 1);
  add(15, 2);
  auto ranked = f.packager.PackageAndRank(plan, f.history, f.optimizer,
                                          f.routing,
                                          PackagingMode::kPerKeyRange);
  ASSERT_EQ(ranked.size(), 3u);
  size_t sizes[3];
  for (size_t i = 0; i < 3; ++i) sizes[i] = ranked[i].ops.size();
  std::sort(sizes, sizes + 3);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 1u);
  EXPECT_EQ(sizes[2], 3u);
}

TEST(TxnPackagerTest, HashModeBoundsGroupCount) {
  Fixture f;
  f.Observe({{0, 10}});
  repartition::RepartitionPlan plan = f.optimizer.DerivePlan(f.routing);
  auto ranked = f.packager.PackageAndRank(plan, f.history, f.optimizer,
                                          f.routing,
                                          PackagingMode::kPerHashBucket);
  EXPECT_LE(ranked.size(), 64u);
  size_t total = 0;
  for (const auto& rt : ranked) total += rt.ops.size();
  EXPECT_EQ(total, plan.size());
}

TEST(TxnPackagerTest, EveryModeCoversThePlanExactlyOnce) {
  Fixture f;
  f.Observe({{0, 30}, {5, 10}});
  repartition::RepartitionPlan plan = f.optimizer.DerivePlan(f.routing);
  for (PackagingMode mode :
       {PackagingMode::kPerBenefitingTemplate, PackagingMode::kSingleGiantTxn,
        PackagingMode::kPerOperation, PackagingMode::kPerKeyRange,
        PackagingMode::kPerHashBucket}) {
    auto ranked = f.packager.PackageAndRank(plan, f.history, f.optimizer,
                                            f.routing, mode);
    std::set<uint64_t> seen;
    for (const auto& rt : ranked) {
      for (const auto& op : rt.ops) {
        EXPECT_TRUE(seen.insert(op.id).second)
            << "mode " << static_cast<int>(mode);
      }
    }
    EXPECT_EQ(seen.size(), plan.size()) << "mode " << static_cast<int>(mode);
  }
}

}  // namespace
}  // namespace soap::core
