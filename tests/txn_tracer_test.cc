#include "src/obs/txn_tracer.h"

#include <gtest/gtest.h>

#include <string>

namespace soap::obs {
namespace {

TxnTracer::Config SampleEvery(uint32_t n) {
  TxnTracer::Config config;
  config.sample_every = n;
  return config;
}

TEST(TxnTracerTest, SamplingIsDeterministic) {
  TxnTracer tracer(SampleEvery(3));
  EXPECT_TRUE(tracer.enabled());
  for (uint64_t id = 0; id < 30; ++id) {
    EXPECT_EQ(tracer.Sampled(id), id % 3 == 0) << "id=" << id;
  }
}

TEST(TxnTracerTest, ZeroSampleDisables) {
  TxnTracer tracer;  // default config: sample_every = 0
  EXPECT_FALSE(tracer.enabled());
  EXPECT_FALSE(tracer.Sampled(0));
  EXPECT_FALSE(tracer.Sampled(42));
}

TEST(TxnTracerTest, BeginEndEmitsSpan) {
  TxnTracer tracer(SampleEvery(1));
  tracer.Begin(7, SpanKind::kQueued, 100);
  EXPECT_EQ(tracer.open_spans(), 1u);
  tracer.End(7, SpanKind::kQueued, 250);
  ASSERT_EQ(tracer.spans().size(), 1u);
  const TraceSpan& s = tracer.spans()[0];
  EXPECT_EQ(s.txn_id, 7u);
  EXPECT_EQ(s.kind, SpanKind::kQueued);
  EXPECT_EQ(s.start_us, 100);
  EXPECT_EQ(s.end_us, 250);
  EXPECT_EQ(s.duration(), 150);
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(TxnTracerTest, BeginIsIdempotentEndWithoutBeginIsNoop) {
  TxnTracer tracer(SampleEvery(1));
  tracer.Begin(1, SpanKind::kExecute, 10);
  tracer.Begin(1, SpanKind::kExecute, 999);  // ignored: already open
  tracer.End(1, SpanKind::kExecute, 20);
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].start_us, 10);

  tracer.End(1, SpanKind::kExecute, 30);  // nothing open: no-op
  EXPECT_EQ(tracer.spans().size(), 1u);
}

TEST(TxnTracerTest, NestedPhasesOfOneTxnCoexist) {
  TxnTracer tracer(SampleEvery(1));
  tracer.Begin(5, SpanKind::kExecute, 0);
  tracer.Begin(5, SpanKind::kLockWait, 10);  // nested inside execute
  tracer.End(5, SpanKind::kLockWait, 40);
  tracer.End(5, SpanKind::kExecute, 100);
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].kind, SpanKind::kLockWait);
  EXPECT_EQ(tracer.spans()[1].kind, SpanKind::kExecute);
}

TEST(TxnTracerTest, FinishTxnClosesOpenPhasesAndEmitsTxnSpan) {
  TxnTracer tracer(SampleEvery(1));
  tracer.Begin(9, SpanKind::kQueued, 0);
  tracer.Begin(9, SpanKind::kExecute, 50);  // still open at abort
  tracer.FinishTxn(9, /*submit_us=*/0, /*now=*/300, /*coordinator=*/2,
                   /*committed=*/false);
  EXPECT_EQ(tracer.open_spans(), 0u);
  ASSERT_EQ(tracer.spans().size(), 3u);
  const TraceSpan& txn = tracer.spans().back();
  EXPECT_EQ(txn.kind, SpanKind::kTxn);
  EXPECT_EQ(txn.start_us, 0);
  EXPECT_EQ(txn.end_us, 300);
  EXPECT_EQ(txn.node, 2u);
  EXPECT_FALSE(txn.committed);
  // The dangling phases were force-closed at the finish time.
  for (const TraceSpan& s : tracer.spans()) {
    EXPECT_LE(s.end_us, 300);
  }
}

TEST(TxnTracerTest, CriticalPathSubtractsLockWaitFromExecute) {
  TxnTracer tracer(SampleEvery(1));
  tracer.Begin(1, SpanKind::kQueued, 0);
  tracer.End(1, SpanKind::kQueued, 100);
  tracer.Begin(1, SpanKind::kExecute, 100);
  tracer.Begin(1, SpanKind::kLockWait, 150);
  tracer.End(1, SpanKind::kLockWait, 250);
  tracer.End(1, SpanKind::kExecute, 400);
  tracer.Begin(1, SpanKind::kPrepare, 400);
  tracer.End(1, SpanKind::kPrepare, 450);
  tracer.Begin(1, SpanKind::kCommit, 450);
  tracer.End(1, SpanKind::kCommit, 500);
  tracer.FinishTxn(1, 0, 500, 0, true);

  const CriticalPathBreakdown b = tracer.AggregateCriticalPath();
  EXPECT_EQ(b.txns, 1u);
  EXPECT_EQ(b.queued, 100);
  EXPECT_EQ(b.lock_wait, 100);
  EXPECT_EQ(b.execute, 200);  // 300 gross - 100 lock wait
  EXPECT_EQ(b.prepare, 50);
  EXPECT_EQ(b.commit, 50);
  EXPECT_EQ(b.Total(), 500);
}

TEST(TxnTracerTest, MaxSpansCapCountsDrops) {
  TxnTracer::Config config = SampleEvery(1);
  config.max_spans = 2;
  TxnTracer tracer(config);
  for (uint64_t id = 0; id < 4; ++id) {
    tracer.Begin(id, SpanKind::kExecute, 0);
    tracer.End(id, SpanKind::kExecute, 10);
  }
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.dropped_spans(), 2u);
  tracer.Clear();
  EXPECT_EQ(tracer.spans().size(), 0u);
  EXPECT_EQ(tracer.dropped_spans(), 0u);
}

TEST(TxnTracerTest, ChromeJsonIsWellFormed) {
  TxnTracer tracer(SampleEvery(1));
  tracer.Begin(3, SpanKind::kQueued, 0);
  tracer.End(3, SpanKind::kQueued, 10);
  tracer.Begin(3, SpanKind::kExecute, 10);
  tracer.End(3, SpanKind::kExecute, 90);
  tracer.FinishTxn(3, 0, 100, 4, true);

  const std::string json = tracer.ToChromeJson();
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queued\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"txn\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":4"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find(
                "\"args\":{\"outcome\":\"committed\",\"kind\":\"client\"}"),
            std::string::npos);

  // Structural well-formedness: balanced {} and [], never negative depth.
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TxnTracerTest, TxnKindIsRecordedPerTransaction) {
  EXPECT_STREQ(TxnKindName(TxnKind::kClient), "client");
  EXPECT_STREQ(TxnKindName(TxnKind::kRepartition), "repartition");
  EXPECT_STREQ(TxnKindName(TxnKind::kReplicaApply), "replica-apply");
  EXPECT_STREQ(TxnKindName(TxnKind::kCarrier), "carrier");

  TxnTracer tracer(SampleEvery(1));
  tracer.FinishTxn(1, 0, 10, 0, true, TxnKind::kRepartition);
  tracer.FinishTxn(2, 10, 20, 0, false, TxnKind::kCarrier);
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find(
                "\"args\":{\"outcome\":\"committed\",\"kind\":"
                "\"repartition\"}"),
            std::string::npos)
      << json;
  EXPECT_NE(
      json.find(
          "\"args\":{\"outcome\":\"aborted\",\"kind\":\"carrier\"}"),
      std::string::npos)
      << json;
}

TEST(TxnTracerTest, EmptyTracerProducesValidChromeJson) {
  TxnTracer tracer(SampleEvery(1));
  EXPECT_EQ(tracer.ToChromeJson(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

}  // namespace
}  // namespace soap::obs
