#include <gtest/gtest.h>

#include "src/workload/generator.h"
#include "src/workload/history.h"
#include "src/workload/template_catalog.h"

namespace soap::workload {
namespace {

WorkloadSpec SmallSpec(PopularityDist dist) {
  WorkloadSpec s;
  s.distribution = dist;
  s.num_templates = 100;
  s.num_keys = 1000;
  s.alpha = 1.0;
  s.seed = 3;
  return s;
}

// -------------------------------------------------------------- Generator

TEST(GeneratorTest, ZipfFavorsLowRanks) {
  TemplateCatalog catalog(SmallSpec(PopularityDist::kZipf), 5);
  WorkloadGenerator gen(&catalog, 11);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) counts[gen.SampleTemplate()]++;
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], 5000);
}

TEST(GeneratorTest, UniformIsFlat) {
  TemplateCatalog catalog(SmallSpec(PopularityDist::kUniform), 5);
  WorkloadGenerator gen(&catalog, 11);
  std::vector<int> counts(100, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) counts[gen.SampleTemplate()]++;
  for (int c : counts) EXPECT_NEAR(c, trials / 100, trials / 100 * 0.25);
}

TEST(GeneratorTest, IntervalBatchPoissonMean) {
  TemplateCatalog catalog(SmallSpec(PopularityDist::kUniform), 5);
  WorkloadGenerator gen(&catalog, 13);
  double total = 0;
  const int intervals = 300;
  for (int i = 0; i < intervals; ++i) {
    total += static_cast<double>(gen.GenerateInterval(50.0).size());
  }
  EXPECT_NEAR(total / intervals, 50.0, 2.0);
}

TEST(GeneratorTest, GeneratedTxnsMatchCatalog) {
  TemplateCatalog catalog(SmallSpec(PopularityDist::kZipf), 5);
  WorkloadGenerator gen(&catalog, 17);
  for (int i = 0; i < 100; ++i) {
    auto t = gen.GenerateOne();
    ASSERT_LT(t->template_id, catalog.size());
    EXPECT_EQ(t->ops.size(), 5u);
    EXPECT_EQ(t->ops[0].key, catalog.at(t->template_id).keys[0]);
  }
  EXPECT_EQ(gen.generated(), 100u);
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  TemplateCatalog catalog(SmallSpec(PopularityDist::kZipf), 5);
  WorkloadGenerator a(&catalog, 19), b(&catalog, 19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.SampleTemplate(), b.SampleTemplate());
  }
}

TEST(GeneratorTest, CalibrationHitsUtilizationTarget) {
  TemplateCatalog catalog(SmallSpec(PopularityDist::kUniform), 5);
  CapacityModel capacity;
  capacity.collocated_cost = Millis(20);
  capacity.distributed_cost = Millis(40);
  capacity.total_workers = 10;
  // alpha=1: all distributed, mean cost 40ms -> capacity 250 txn/s.
  const double rate = WorkloadGenerator::CalibrateArrivalRate(
      catalog, capacity, 1.0);
  EXPECT_NEAR(rate, 250.0, 1.0);
  EXPECT_NEAR(
      WorkloadGenerator::CalibrateArrivalRate(catalog, capacity, 0.65),
      162.5, 1.0);
}

TEST(GeneratorTest, ExpectedCostInterpolatesWithAlpha) {
  WorkloadSpec spec = SmallSpec(PopularityDist::kUniform);
  spec.alpha = 0.5;
  TemplateCatalog catalog(spec, 5);
  CapacityModel capacity;
  capacity.collocated_cost = Millis(20);
  capacity.distributed_cost = Millis(40);
  capacity.total_workers = 10;
  EXPECT_NEAR(WorkloadGenerator::ExpectedInitialCost(catalog, capacity),
              static_cast<double>(Millis(30)), static_cast<double>(Millis(1)));
}

TEST(GeneratorTest, ZipfExpectedCostWeightsByPopularity) {
  // With alpha=1 every template is distributed regardless of popularity.
  TemplateCatalog catalog(SmallSpec(PopularityDist::kZipf), 5);
  CapacityModel capacity;
  capacity.collocated_cost = Millis(20);
  capacity.distributed_cost = Millis(40);
  capacity.total_workers = 10;
  EXPECT_NEAR(WorkloadGenerator::ExpectedInitialCost(catalog, capacity),
              static_cast<double>(Millis(40)), 1000.0);
}

// ---------------------------------------------------------------- History

TEST(HistoryTest, EmptyHasZeroRates) {
  WorkloadHistory h(10, 5);
  EXPECT_DOUBLE_EQ(h.FrequencyOf(3), 0.0);
  EXPECT_DOUBLE_EQ(h.TotalRate(), 0.0);
}

TEST(HistoryTest, FrequencyPerSecond) {
  WorkloadHistory h(10, 5);
  for (int i = 0; i < 40; ++i) h.Record(2);
  h.CloseInterval(Seconds(20));
  EXPECT_DOUBLE_EQ(h.FrequencyOf(2), 2.0);
  EXPECT_DOUBLE_EQ(h.FrequencyOf(3), 0.0);
  EXPECT_DOUBLE_EQ(h.TotalRate(), 2.0);
}

TEST(HistoryTest, OpenIntervalNotCounted) {
  WorkloadHistory h(10, 5);
  h.Record(1);
  EXPECT_DOUBLE_EQ(h.FrequencyOf(1), 0.0);
  h.CloseInterval(Seconds(1));
  EXPECT_DOUBLE_EQ(h.FrequencyOf(1), 1.0);
}

TEST(HistoryTest, WindowSlidesOldDataOut) {
  WorkloadHistory h(10, 2);
  h.Record(1);
  h.CloseInterval(Seconds(1));  // interval A: one obs
  h.CloseInterval(Seconds(1));  // interval B: none
  EXPECT_DOUBLE_EQ(h.FrequencyOf(1), 0.5);
  h.CloseInterval(Seconds(1));  // interval C: A falls out of the window
  EXPECT_DOUBLE_EQ(h.FrequencyOf(1), 0.0);
  EXPECT_EQ(h.window_size(), 2u);
}

TEST(HistoryTest, AggregatesAcrossWindow) {
  WorkloadHistory h(10, 3);
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < 10; ++i) h.Record(0);
    h.CloseInterval(Seconds(10));
  }
  EXPECT_DOUBLE_EQ(h.FrequencyOf(0), 1.0);
  EXPECT_EQ(h.total_recorded(), 30u);
}

TEST(HistoryTest, EstimatesMatchGeneratorPopularity) {
  // Record a generated workload and verify the history's estimate for the
  // hottest template approaches its true probability.
  TemplateCatalog catalog(SmallSpec(PopularityDist::kZipf), 5);
  WorkloadGenerator gen(&catalog, 23);
  WorkloadHistory h(100, 10);
  const int per_interval = 5000;
  for (int k = 0; k < 10; ++k) {
    for (int i = 0; i < per_interval; ++i) h.Record(gen.SampleTemplate());
    h.CloseInterval(Seconds(1));
  }
  ZipfSampler pmf(100, 1.16);
  const double expected_rate = pmf.Pmf(0) * per_interval;
  EXPECT_NEAR(h.FrequencyOf(0), expected_rate, expected_rate * 0.1);
}

}  // namespace
}  // namespace soap::workload
