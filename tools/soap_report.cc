// soap_report: offline explain/report tool over the observability exports
// of one soap_run invocation (--audit_out / --timeline_out /
// --metrics_jsonl). Subcommands:
//
//   soap_report explain  --audit run.audit.jsonl --plan 3
//       Every candidate op of plan generation 3 with its cost inputs and
//       accept/reject reason, plus the plan's deployment lifecycle.
//   soap_report summary  --audit run.audit.jsonl [--timeline run.tl.jsonl]
//       Whole-run digest: replans, decisions by reason, deploys, aborts,
//       replication sweeps, timeline peaks.
//   soap_report html     --audit ... [--timeline ...] --out report.html
//       Self-contained HTML report (inline SVG sparklines, plan tables).
//   soap_report validate --audit ... [--timeline ...]
//       Schema check; exit 0 iff every stream is well-formed. A truncated
//       FINAL line (writer died mid-record) is skipped with a warning and
//       turns an otherwise-clean exit into exit 3; real corruption is 1.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/obs/report.h"

namespace {

using soap::Result;
using soap::Status;
using soap::json::Value;
namespace report = soap::obs::report;

constexpr const char* kUsage =
    "usage: soap_report <explain|summary|html|validate> [options]\n"
    "  --audit <file>     audit log JSONL (soap_run --audit_out)\n"
    "  --timeline <file>  timeline JSONL (soap_run --timeline_out)\n"
    "  --metrics <file>   metric snapshots JSONL (soap_run --metrics_jsonl)\n"
    "  --plan <n>         plan generation to explain (explain only)\n"
    "  --out <file>       output path (html only; default stdout)\n";

struct Options {
  std::string command;
  std::string audit_path;
  std::string timeline_path;
  std::string metrics_path;
  std::string out_path;
  uint64_t plan = 0;
  bool plan_set = false;
};

bool ParseArgs(int argc, char** argv, Options* opts) {
  if (argc < 2) return false;
  opts->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "missing value for %s\n", arg.c_str());
      return false;
    }
    if (arg == "--audit") {
      opts->audit_path = value;
    } else if (arg == "--timeline") {
      opts->timeline_path = value;
    } else if (arg == "--metrics") {
      opts->metrics_path = value;
    } else if (arg == "--out") {
      opts->out_path = value;
    } else if (arg == "--plan") {
      opts->plan = std::strtoull(value.c_str(), nullptr, 10);
      opts->plan_set = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool LoadInto(const std::string& path, const char* what,
              std::vector<Value>* out, bool* any_truncated) {
  if (path.empty()) return true;
  bool truncated = false;
  Result<std::vector<Value>> loaded =
      report::LoadJsonlFile(path, &truncated);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 loaded.status().ToString().c_str());
    return false;
  }
  if (truncated) {
    std::fprintf(stderr,
                 "warning: %s: final line of %s is truncated; skipped\n",
                 what, path.c_str());
    *any_truncated = true;
  }
  *out = std::move(loaded).value();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  report::RunData run;
  bool any_truncated = false;
  if (!LoadInto(opts.audit_path, "audit", &run.audit, &any_truncated) ||
      !LoadInto(opts.timeline_path, "timeline", &run.timeline,
                &any_truncated) ||
      !LoadInto(opts.metrics_path, "metrics", &run.metrics,
                &any_truncated)) {
    return 1;
  }

  if (opts.command == "validate") {
    if (opts.audit_path.empty() && opts.timeline_path.empty()) {
      std::fprintf(stderr, "validate needs --audit and/or --timeline\n");
      return 2;
    }
    int rc = 0;
    if (!opts.audit_path.empty()) {
      Status s = report::ValidateAudit(run.audit);
      std::printf("audit: %s (%zu records)\n",
                  s.ok() ? "ok" : s.ToString().c_str(), run.audit.size());
      if (!s.ok()) rc = 1;
    }
    if (!opts.timeline_path.empty()) {
      Status s = report::ValidateTimeline(run.timeline);
      std::printf("timeline: %s (%zu ticks)\n",
                  s.ok() ? "ok" : s.ToString().c_str(),
                  run.timeline.size());
      if (!s.ok()) rc = 1;
    }
    // A truncated tail is recoverable but worth a distinct signal: the
    // surviving records validated, yet the file is not what the run wrote.
    if (rc == 0 && any_truncated) rc = 3;
    return rc;
  }

  if (opts.command == "explain") {
    if (opts.audit_path.empty() || !opts.plan_set) {
      std::fprintf(stderr, "explain needs --audit and --plan\n%s", kUsage);
      return 2;
    }
    const std::string text = report::Explain(run.audit, opts.plan);
    std::printf("%s", text.c_str());
    return text.rfind("plan " + std::to_string(opts.plan) + " not found",
                      0) == 0
               ? 1
               : 0;
  }

  if (opts.command == "summary") {
    if (opts.audit_path.empty()) {
      std::fprintf(stderr, "summary needs --audit\n%s", kUsage);
      return 2;
    }
    std::printf("%s", report::Summary(run).c_str());
    return 0;
  }

  if (opts.command == "html") {
    if (opts.audit_path.empty()) {
      std::fprintf(stderr, "html needs --audit\n%s", kUsage);
      return 2;
    }
    const std::string html = report::HtmlReport(run);
    if (opts.out_path.empty()) {
      std::printf("%s", html.c_str());
      return 0;
    }
    std::ofstream out(opts.out_path, std::ios::binary);
    if (!out || !(out << html)) {
      std::fprintf(stderr, "cannot write %s\n", opts.out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", opts.out_path.c_str());
    return 0;
  }

  std::fprintf(stderr, "unknown command \"%s\"\n%s", opts.command.c_str(),
               kUsage);
  return 2;
}
