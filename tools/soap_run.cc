// soap_run: the command-line experiment runner. Configures one SOAP
// experiment from flags, runs it, prints the per-interval series (table +
// ASCII chart) and an audit summary, and optionally dumps a CSV.
//
// Examples:
//   soap_run --strategy hybrid --workload zipf --load high --alpha 1.0
//   soap_run --strategy afterall --workload uniform --load low
//            --alpha 0.6 --templates 3000 --keys 60000 --intervals 45
//            --sp 1.05 --seed 7 --csv out.csv --chart

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/engine/experiment.h"
#include "src/engine/parallel_runner.h"

namespace {

void PrintUsage() {
  std::printf(
      "soap_run — run one SOAP online-repartitioning experiment\n\n"
      "  --strategy  applyall|afterall|feedback|piggyback|hybrid  (hybrid)\n"
      "  --workload  zipf|uniform                                 (zipf)\n"
      "  --load      high|low                                     (high)\n"
      "  --alpha     fraction of templates starting distributed   (1.0)\n"
      "  --templates distinct transaction templates               (paper)\n"
      "  --keys      tuples in the table                          (paper)\n"
      "  --warmup    warmup intervals                             (10)\n"
      "  --intervals measured intervals                           (125)\n"
      "  --sp        feedback setpoint (total/normal cost ratio)  (1.05)\n"
      "  --isolation readcommitted|serializable          (readcommitted)\n"
      "  --seed      RNG seed                                     (1)\n"
      "  --stride    print every n-th interval                    (5)\n"
      "  --csv PATH  dump the series as CSV\n"
      "  --record-trace PATH  save the arrival stream for replay\n"
      "  --replay-trace PATH  drive the run from a recorded trace\n"
      "  --chart     also render ASCII charts\n"
      "  --metrics_out PATH    Prometheus text dump of the run's metrics\n"
      "  --metrics_jsonl PATH  per-interval JSONL metric snapshots\n"
      "  --trace_out PATH      Chrome trace JSON (Perfetto-loadable)\n"
      "  --trace_sample N      trace every n-th transaction         (1)\n"
      "  --fault_spec SPEC     inject faults, e.g.\n"
      "              'crash:node=2,at=120s,down=15s;drop:p=0.01'\n"
      "              (see EXPERIMENTS.md, \"Fault injection\")\n"
      "  --planner   enable the online co-access-graph planner\n"
      "  --replan N  planner replan period in intervals            (3)\n"
      "  --plan_ops N max migration ops per emitted plan           (2048)\n"
      "  --plan_min_heat W  min co-access weight to migrate a key  (1)\n"
      "  --drift     hotspot|skewflip|mixrotation: drifting workload\n"
      "              (phases start right after warmup)\n"
      "  --drift_phases N     number of drift phases               (3)\n"
      "  --drift_phase_len N  intervals per drift phase            (8)\n"
      "  --pair_fraction F    cross-template paired-txn fraction   (0.35)\n"
      "  --log_level debug|info|warn|error                       (warn)\n"
      "  --seeds     comma list, e.g. 1,2,3: one run per seed\n"
      "  --threads N run --seeds entries on N parallel threads    (1)\n"
      "              (results are identical at any thread count)\n"
      "  --help      this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace soap;

  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  Flags flags = std::move(parsed).value();
  if (flags.GetBool("help")) {
    PrintUsage();
    return 0;
  }

  engine::ExperimentConfig config;
  const std::string strategy = flags.GetString("strategy", "hybrid");
  if (strategy == "applyall") {
    config.strategy = SchedulingStrategy::kApplyAll;
  } else if (strategy == "afterall") {
    config.strategy = SchedulingStrategy::kAfterAll;
  } else if (strategy == "feedback") {
    config.strategy = SchedulingStrategy::kFeedback;
  } else if (strategy == "piggyback") {
    config.strategy = SchedulingStrategy::kPiggyback;
  } else if (strategy == "hybrid") {
    config.strategy = SchedulingStrategy::kHybrid;
  } else {
    std::fprintf(stderr, "unknown --strategy %s\n", strategy.c_str());
    return 2;
  }

  const double alpha = flags.GetDouble("alpha", 1.0);
  const std::string workload = flags.GetString("workload", "zipf");
  if (workload == "zipf") {
    config.workload = workload::WorkloadSpec::Zipf(alpha);
  } else if (workload == "uniform") {
    config.workload = workload::WorkloadSpec::Uniform(alpha);
  } else {
    std::fprintf(stderr, "unknown --workload %s\n", workload.c_str());
    return 2;
  }
  if (flags.Has("templates")) {
    config.workload.num_templates =
        static_cast<uint32_t>(flags.GetInt("templates"));
  }
  if (flags.Has("keys")) {
    config.workload.num_keys =
        static_cast<uint64_t>(flags.GetInt("keys"));
  }

  const std::string load = flags.GetString("load", "high");
  if (load == "high") {
    config.utilization = workload::kHighLoadUtilization;
  } else if (load == "low") {
    config.utilization = workload::kLowLoadUtilization;
  } else {
    config.utilization = std::stod(load);  // raw utilisation accepted
  }

  const std::string isolation =
      flags.GetString("isolation", "readcommitted");
  if (isolation == "serializable") {
    config.cluster.isolation = cluster::IsolationLevel::kSerializable;
  } else if (isolation != "readcommitted") {
    std::fprintf(stderr, "unknown --isolation %s\n", isolation.c_str());
    return 2;
  }

  config.warmup_intervals =
      static_cast<uint32_t>(flags.GetInt("warmup", 10));
  config.measured_intervals =
      static_cast<uint32_t>(flags.GetInt("intervals", 125));
  config.feedback.sp = flags.GetDouble("sp", 1.05);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const auto stride = static_cast<size_t>(flags.GetInt("stride", 5));
  const std::string csv = flags.GetString("csv", "");
  const bool chart = flags.GetBool("chart");
  config.record_trace_path = flags.GetString("record-trace", "");
  config.replay_trace_path = flags.GetString("replay-trace", "");
  config.obs.metrics_out = flags.GetString("metrics_out", "");
  config.obs.metrics_jsonl_out = flags.GetString("metrics_jsonl", "");
  config.obs.trace_out = flags.GetString("trace_out", "");
  config.obs.trace_sample =
      static_cast<uint32_t>(flags.GetInt("trace_sample", 1));
  config.fault_spec = flags.GetString("fault_spec", "");

  // Online planner / drifting workloads (EXPERIMENTS.md, "Adaptive
  // repartitioning under drift"). Both default off, leaving the output
  // byte-identical to the static pipeline's.
  config.planner.enabled = flags.GetBool("planner");
  if (flags.Has("replan")) {
    config.planner.replan_period =
        static_cast<uint32_t>(flags.GetInt("replan"));
  }
  if (flags.Has("plan_ops")) {
    config.planner.builder.max_ops =
        static_cast<uint32_t>(flags.GetInt("plan_ops"));
  }
  if (flags.Has("plan_min_heat")) {
    config.planner.builder.min_vertex_weight =
        static_cast<uint64_t>(flags.GetInt("plan_min_heat"));
  }
  const std::string drift = flags.GetString("drift", "");
  const auto drift_phases =
      static_cast<uint32_t>(flags.GetInt("drift_phases", 3));
  const auto drift_phase_len =
      static_cast<uint32_t>(flags.GetInt("drift_phase_len", 8));
  const double pair_fraction = flags.GetDouble("pair_fraction", 0.35);
  if (!drift.empty()) {
    if (drift == "hotspot") {
      config.workload = workload::WorkloadSpec::HotspotDrift(
          config.workload, config.warmup_intervals, drift_phases,
          drift_phase_len, pair_fraction);
    } else if (drift == "skewflip") {
      config.workload = workload::WorkloadSpec::SkewFlip(
          config.workload, config.warmup_intervals, drift_phases,
          drift_phase_len, /*high_s=*/1.16, /*low_s=*/0.4, pair_fraction);
    } else if (drift == "mixrotation") {
      config.workload = workload::WorkloadSpec::MixRotation(
          config.workload, config.warmup_intervals, drift_phases,
          drift_phase_len, pair_fraction);
    } else {
      std::fprintf(stderr, "unknown --drift %s\n", drift.c_str());
      return 2;
    }
  }
  // The distributed-transaction column only matters for planner/drift
  // runs; omitting it otherwise keeps the default output byte-identical.
  const bool show_distributed = config.planner.enabled || !drift.empty();
  const std::string log_level = flags.GetString("log_level", "");
  if (!log_level.empty()) {
    std::optional<LogLevel> parsed_level = ParseLogLevel(log_level);
    if (!parsed_level.has_value()) {
      std::fprintf(stderr, "unknown --log_level %s\n", log_level.c_str());
      return 2;
    }
    Logger::Instance().set_level(*parsed_level);
  }

  // Multi-seed mode: run the same configuration once per seed, optionally
  // in parallel. Output (and every result) is in seed order regardless of
  // the thread count; the default single-seed path below is untouched.
  const std::string seeds_flag = flags.GetString("seeds", "");
  const unsigned threads = engine::ParseThreadCount(
      flags.GetString("threads", "").c_str());

  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::fprintf(stderr, "unknown flag --%s (see --help)\n",
                 unknown.c_str());
    return 2;
  }

  if (!seeds_flag.empty()) {
    std::vector<uint64_t> seeds;
    std::string token;
    for (size_t at = 0; at <= seeds_flag.size(); ++at) {
      if (at == seeds_flag.size() || seeds_flag[at] == ',') {
        if (!token.empty()) seeds.push_back(std::stoull(token));
        token.clear();
      } else {
        token.push_back(seeds_flag[at]);
      }
    }
    if (seeds.empty()) {
      std::fprintf(stderr, "--seeds needs at least one integer\n");
      return 2;
    }
    std::vector<engine::ExperimentCell> cells;
    cells.reserve(seeds.size());
    for (uint64_t seed : seeds) {
      engine::ExperimentConfig cell_config = config;
      cell_config.seed = seed;
      cells.push_back(engine::ExperimentCell{std::move(cell_config)});
    }
    int exit_code = 0;
    engine::ParallelRunner runner(threads);
    runner.Run(std::move(cells), [&](const engine::CellOutcome& outcome) {
      const engine::ExperimentResult& r = outcome.result;
      std::printf("==== seed %llu (%.1fs wall) ====\n%s\n\n",
                  static_cast<unsigned long long>(seeds[outcome.index]),
                  outcome.wall_seconds, r.Summary().c_str());
      if (!csv.empty()) {
        SeriesBundle bundle(strategy + " / seed=" +
                            std::to_string(seeds[outcome.index]));
        bundle.Insert("rep_rate", r.rep_rate);
        bundle.Insert("txn_per_min", r.throughput);
        bundle.Insert("latency_ms", r.latency_ms);
        bundle.Insert("p99_ms", r.latency_p99_ms);
        bundle.Insert("failure", r.failure_rate);
        bundle.Insert("queue", r.queue_length);
        if (show_distributed) {
          bundle.Insert("distributed", r.distributed_ratio);
        }
        const size_t dot = csv.rfind('.');
        const std::string path =
            dot == std::string::npos
                ? csv + "_s" + std::to_string(seeds[outcome.index])
                : csv.substr(0, dot) + "_s" +
                      std::to_string(seeds[outcome.index]) + csv.substr(dot);
        Status s = bundle.WriteCsv(path);
        if (s.ok()) {
          std::printf("wrote %s\n", path.c_str());
        } else {
          std::fprintf(stderr, "csv: %s\n", s.ToString().c_str());
          exit_code = 1;
        }
      }
      if (!r.audit.ok()) exit_code = 1;
      std::fflush(stdout);
    });
    return exit_code;
  }

  engine::ExperimentResult r = engine::Experiment(config).Run();
  std::printf("%s\n\n", r.Summary().c_str());
  if (!config.fault_spec.empty()) {
    std::printf(
        "faults: crashes=%llu msgs_dropped=%llu msgs_parked=%llu "
        "2pc[resends=%llu prepare_timeouts=%llu ack_giveups=%llu "
        "coord_crash_aborts=%llu] aborts[node_crash=%llu shutdown=%llu]\n\n",
        static_cast<unsigned long long>(r.faults_crashes),
        static_cast<unsigned long long>(r.faults_msgs_dropped),
        static_cast<unsigned long long>(r.faults_msgs_parked),
        static_cast<unsigned long long>(r.tpc_stats.resends),
        static_cast<unsigned long long>(r.tpc_stats.prepare_timeouts),
        static_cast<unsigned long long>(r.tpc_stats.ack_giveups),
        static_cast<unsigned long long>(r.tpc_stats.coordinator_crash_aborts),
        static_cast<unsigned long long>(r.counters.aborts_node_crash),
        static_cast<unsigned long long>(r.counters.aborts_shutdown));
  }

  SeriesBundle bundle(strategy + " / " + workload + " / " + load +
                      " / alpha=" + std::to_string(alpha));
  bundle.Insert("rep_rate", r.rep_rate);
  bundle.Insert("txn_per_min", r.throughput);
  bundle.Insert("latency_ms", r.latency_ms);
  bundle.Insert("p99_ms", r.latency_p99_ms);
  bundle.Insert("failure", r.failure_rate);
  bundle.Insert("queue", r.queue_length);
  if (show_distributed) {
    bundle.Insert("distributed", r.distributed_ratio);
    bundle.Insert("util", r.utilization);
  }
  std::printf("%s\n", bundle.ToTable(stride).c_str());
  if (chart) {
    SeriesBundle tput("throughput (txn/min)");
    tput.Insert("txn_per_min", r.throughput);
    std::printf("%s\n", tput.ToAsciiChart().c_str());
    SeriesBundle lat("latency (ms)");
    lat.Insert("mean", r.latency_ms);
    lat.Insert("p99", r.latency_p99_ms);
    std::printf("%s\n", lat.ToAsciiChart(12, /*log_scale=*/true).c_str());
  }
  if (!csv.empty()) {
    Status s = bundle.WriteCsv(csv);
    if (!s.ok()) {
      std::fprintf(stderr, "csv: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", csv.c_str());
  }
  if (r.tracer != nullptr && r.critical_path.txns > 0) {
    const obs::CriticalPathBreakdown& cp = r.critical_path;
    const double per_txn = 1.0 / static_cast<double>(cp.txns);
    std::printf(
        "critical path, mean per traced txn (%llu traced): "
        "queued=%.2fms lock_wait=%.2fms execute=%.2fms prepare=%.2fms "
        "commit=%.2fms\n",
        static_cast<unsigned long long>(cp.txns),
        ToMillis(cp.queued) * per_txn, ToMillis(cp.lock_wait) * per_txn,
        ToMillis(cp.execute) * per_txn, ToMillis(cp.prepare) * per_txn,
        ToMillis(cp.commit) * per_txn);
  }
  if (!r.obs_export.ok()) {
    std::fprintf(stderr, "observability export: %s\n",
                 r.obs_export.ToString().c_str());
    return 1;
  }
  if (!config.obs.metrics_out.empty()) {
    std::printf("wrote %s\n", config.obs.metrics_out.c_str());
  }
  if (!config.obs.metrics_jsonl_out.empty()) {
    std::printf("wrote %s\n", config.obs.metrics_jsonl_out.c_str());
  }
  if (!config.obs.trace_out.empty() && r.tracer != nullptr) {
    std::printf("wrote %s\n", config.obs.trace_out.c_str());
  }
  return r.audit.ok() ? 0 : 1;
}
