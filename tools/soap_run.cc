// soap_run: the command-line experiment runner. Configures one SOAP
// experiment from the shared declarative flag table (src/engine/
// flag_table.h), runs it, prints the per-interval series (table + ASCII
// chart) and an audit summary, and optionally dumps a CSV.
//
// Examples:
//   soap_run --strategy hybrid --workload zipf --load high --alpha 1.0
//   soap_run --strategy afterall --workload uniform --load low
//            --alpha 0.6 --templates 3000 --keys 60000 --intervals 45
//            --sp 1.05 --seed 7 --csv out.csv --chart
//   soap_run --planner --drift hotspot --replicas --fault_spec
//            'crash:node=1,at=300s,down=30s'

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/check/chaos.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/engine/experiment.h"
#include "src/engine/flag_table.h"
#include "src/engine/parallel_runner.h"
#include "src/fault/fault_spec.h"

namespace {

// Chaos schedule search: sample `count` random fault schedules, run each
// with the consistency checker on, shrink any failure to a minimal
// reproducer and write it to `out_dir`. Returns the process exit code.
int RunChaosSearch(const soap::engine::ExperimentConfig& base, int count,
                   const std::string& out_dir) {
  using namespace soap;
  engine::ExperimentConfig config = base;
  // The searched surface is the full stack: planner + replication +
  // faults, with the checker verifying every run.
  config.planner_options.enabled = true;
  config.replicas.enabled = true;
  config.check.enabled = true;

  // Fit the schedule domain to the configured run length so sampled
  // events land while the run is live.
  check::ChaosDomain domain;
  domain.num_nodes = config.cluster.num_nodes;
  const SimTime total =
      static_cast<SimTime>(config.warmup_intervals +
                           config.measured_intervals) *
      config.interval_length;
  domain.earliest = total / 8;
  domain.latest = (total * 3) / 4;
  domain.max_down = std::min<Duration>(domain.max_down, total / 6);
  domain.min_down = std::min(domain.min_down, domain.max_down / 2);
  domain.max_partition_for =
      std::min<Duration>(domain.max_partition_for, total / 8);
  domain.min_partition_for =
      std::min(domain.min_partition_for, domain.max_partition_for / 2);

  auto run_one = [&config](const fault::FaultSpec& spec) {
    engine::ExperimentConfig cc = config;
    cc.fault_options.spec = spec.ToString();
    engine::ExperimentResult r = engine::Experiment(cc).Run();
    check::ChaosVerdict v;
    v.ok = r.audit.ok() && r.check_report.ok() && r.drained;
    if (!v.ok) {
      v.detail = r.drained ? "" : "undrained; ";
      v.detail += "audit=" + r.audit.ToString() + "; " +
                  r.check_report.ToString();
    }
    return v;
  };

  int failures = 0;
  for (int k = 0; k < count; ++k) {
    const uint64_t seed = base.seed * 7919 + static_cast<uint64_t>(k) + 1;
    const fault::FaultSpec spec = check::SampleChaosSpec(seed, domain);
    const check::ChaosVerdict v = run_one(spec);
    if (v.ok) {
      std::printf("chaos seed=%llu ok  (%s)\n",
                  static_cast<unsigned long long>(seed),
                  spec.ToString().c_str());
      std::fflush(stdout);
      continue;
    }
    ++failures;
    std::printf("chaos seed=%llu FAILED: %s\n",
                static_cast<unsigned long long>(seed), v.detail.c_str());
    std::fflush(stdout);
    const check::ShrinkResult shrunk =
        check::ShrinkFailingSpec(spec, run_one, /*budget=*/24);
    const std::string path =
        (out_dir.empty() ? std::string(".") : out_dir) +
        "/chaos_repro_seed" + std::to_string(seed) + ".txt";
    if (FILE* out = std::fopen(path.c_str(), "w")) {
      std::fprintf(out, "%s\n", shrunk.spec.ToString().c_str());
      std::fclose(out);
      std::printf(
          "chaos seed=%llu shrunk to '%s' (%llu shrink runs, %llu events "
          "removed) -> %s\n",
          static_cast<unsigned long long>(seed),
          shrunk.spec.ToString().c_str(),
          static_cast<unsigned long long>(shrunk.runs),
          static_cast<unsigned long long>(shrunk.removed), path.c_str());
    } else {
      std::fprintf(stderr, "chaos: cannot write %s\n", path.c_str());
    }
    std::fflush(stdout);
  }
  std::printf("chaos: %d/%d schedules ok\n", count - failures, count);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace soap;

  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  Flags flags = std::move(parsed).value();

  engine::FlagTable table = engine::ExperimentFlagTable();
  // Presentation flags this frontend consumes itself.
  table.Add({"stride", engine::FlagType::kInt, "5",
             "print every n-th interval", nullptr});
  table.Add({"csv", engine::FlagType::kString, "",
             "dump the series as CSV", nullptr});
  table.Add({"chart", engine::FlagType::kBool, "",
             "also render ASCII charts", nullptr});
  table.Add({"seeds", engine::FlagType::kString, "",
             "comma list, e.g. 1,2,3: one run per seed", nullptr});
  table.Add({"threads", engine::FlagType::kInt, "1",
             "run --seeds entries on N parallel threads (results are "
             "identical at any thread count)",
             nullptr});
  table.Add({"chaos_seeds", engine::FlagType::kInt, "0",
             "chaos search: run N random fault schedules under --check "
             "(planner+replicas forced on), shrink any failure", nullptr});
  table.Add({"chaos_out", engine::FlagType::kString, ".",
             "directory for shrunken chaos reproducer files", nullptr});

  if (flags.GetBool("help")) {
    std::printf("%s", table.Help("soap_run",
                                 "run one SOAP online-repartitioning "
                                 "experiment")
                          .c_str());
    return 0;
  }
  if (Status s = table.CheckUnknown(flags); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }

  engine::ExperimentConfig config;
  if (Status s = table.Apply(flags, &config); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  if (Status s = config.Validate(); !s.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 s.ToString().c_str());
    return 2;
  }

  if (const int chaos_seeds = static_cast<int>(flags.GetInt("chaos_seeds", 0));
      chaos_seeds > 0) {
    return RunChaosSearch(config, chaos_seeds,
                          flags.GetString("chaos_out", "."));
  }

  const std::string strategy = flags.GetString("strategy", "hybrid");
  const std::string workload = flags.GetString("workload", "zipf");
  const std::string load = flags.GetString("load", "high");
  const double alpha = flags.GetDouble("alpha", 1.0);
  const std::string drift = flags.GetString("drift", "");
  const auto stride = static_cast<size_t>(flags.GetInt("stride", 5));
  const std::string csv = flags.GetString("csv", "");
  const bool chart = flags.GetBool("chart");
  // The distributed-transaction column only matters for planner/drift
  // runs; omitting it otherwise keeps the default output byte-identical.
  const bool show_distributed = config.planner_options.enabled || !drift.empty();
  const bool show_replicas = config.replicas.enabled;

  // Multi-seed mode: run the same configuration once per seed, optionally
  // in parallel. Output (and every result) is in seed order regardless of
  // the thread count; the default single-seed path below is untouched.
  const std::string seeds_flag = flags.GetString("seeds", "");
  const unsigned threads = engine::ParseThreadCount(
      flags.GetString("threads", "").c_str());

  if (!seeds_flag.empty()) {
    std::vector<uint64_t> seeds;
    std::string token;
    for (size_t at = 0; at <= seeds_flag.size(); ++at) {
      if (at == seeds_flag.size() || seeds_flag[at] == ',') {
        if (!token.empty()) seeds.push_back(std::stoull(token));
        token.clear();
      } else {
        token.push_back(seeds_flag[at]);
      }
    }
    if (seeds.empty()) {
      std::fprintf(stderr, "--seeds needs at least one integer\n");
      return 2;
    }
    // Per-seed output files get an `_s<seed>` suffix (same scheme as
    // --csv) so parallel cells never write over each other.
    auto seed_path = [](const std::string& path, uint64_t seed) {
      if (path.empty()) return path;
      const size_t dot = path.rfind('.');
      const std::string suffix = "_s" + std::to_string(seed);
      return dot == std::string::npos
                 ? path + suffix
                 : path.substr(0, dot) + suffix + path.substr(dot);
    };
    std::vector<engine::ExperimentCell> cells;
    cells.reserve(seeds.size());
    for (uint64_t seed : seeds) {
      engine::ExperimentConfig cell_config = config;
      cell_config.seed = seed;
      cell_config.obs.audit_out = seed_path(config.obs.audit_out, seed);
      cell_config.obs.timeline_out = seed_path(config.obs.timeline_out, seed);
      cells.push_back(engine::ExperimentCell{std::move(cell_config)});
    }
    int exit_code = 0;
    engine::ParallelRunner runner(threads);
    runner.Run(std::move(cells), [&](const engine::CellOutcome& outcome) {
      const engine::ExperimentResult& r = outcome.result;
      std::printf("==== seed %llu (%.1fs wall) ====\n%s\n\n",
                  static_cast<unsigned long long>(seeds[outcome.index]),
                  outcome.wall_seconds, r.Summary().c_str());
      if (!csv.empty()) {
        SeriesBundle bundle(strategy + " / seed=" +
                            std::to_string(seeds[outcome.index]));
        bundle.Insert("rep_rate", r.rep_rate);
        bundle.Insert("txn_per_min", r.throughput);
        bundle.Insert("latency_ms", r.latency_ms);
        bundle.Insert("p99_ms", r.latency_p99_ms);
        bundle.Insert("failure", r.failure_rate);
        bundle.Insert("queue", r.queue_length);
        if (show_distributed) {
          bundle.Insert("distributed", r.distributed_ratio);
        }
        if (show_replicas) {
          bundle.Insert("replica_reads", r.replica_read_ratio);
        }
        const size_t dot = csv.rfind('.');
        const std::string path =
            dot == std::string::npos
                ? csv + "_s" + std::to_string(seeds[outcome.index])
                : csv.substr(0, dot) + "_s" +
                      std::to_string(seeds[outcome.index]) + csv.substr(dot);
        Status s = bundle.WriteCsv(path);
        if (s.ok()) {
          std::printf("wrote %s\n", path.c_str());
        } else {
          std::fprintf(stderr, "csv: %s\n", s.ToString().c_str());
          exit_code = 1;
        }
      }
      if (!r.audit.ok()) exit_code = 1;
      if (r.check_enabled && !r.check_report.ok()) exit_code = 1;
      std::fflush(stdout);
    });
    return exit_code;
  }

  engine::ExperimentResult r = engine::Experiment(config).Run();
  std::printf("%s\n\n", r.Summary().c_str());
  if (!config.fault_options.spec.empty()) {
    std::printf(
        "faults: crashes=%llu msgs_dropped=%llu msgs_parked=%llu "
        "2pc[resends=%llu prepare_timeouts=%llu ack_giveups=%llu "
        "coord_crash_aborts=%llu] aborts[node_crash=%llu shutdown=%llu]\n\n",
        static_cast<unsigned long long>(r.faults_crashes),
        static_cast<unsigned long long>(r.faults_msgs_dropped),
        static_cast<unsigned long long>(r.faults_msgs_parked),
        static_cast<unsigned long long>(r.tpc_stats.resends),
        static_cast<unsigned long long>(r.tpc_stats.prepare_timeouts),
        static_cast<unsigned long long>(r.tpc_stats.ack_giveups),
        static_cast<unsigned long long>(r.tpc_stats.coordinator_crash_aborts),
        static_cast<unsigned long long>(r.counters.aborts_node_crash),
        static_cast<unsigned long long>(r.counters.aborts_shutdown));
  }
  if (r.check_enabled) {
    std::printf("%s\n\n", r.check_report.ToString().c_str());
  }

  SeriesBundle bundle(strategy + " / " + workload + " / " + load +
                      " / alpha=" + std::to_string(alpha));
  bundle.Insert("rep_rate", r.rep_rate);
  bundle.Insert("txn_per_min", r.throughput);
  bundle.Insert("latency_ms", r.latency_ms);
  bundle.Insert("p99_ms", r.latency_p99_ms);
  bundle.Insert("failure", r.failure_rate);
  bundle.Insert("queue", r.queue_length);
  if (show_distributed) {
    bundle.Insert("distributed", r.distributed_ratio);
    bundle.Insert("util", r.utilization);
  }
  if (show_replicas) {
    bundle.Insert("replica_reads", r.replica_read_ratio);
  }
  std::printf("%s\n", bundle.ToTable(stride).c_str());
  if (chart) {
    SeriesBundle tput("throughput (txn/min)");
    tput.Insert("txn_per_min", r.throughput);
    std::printf("%s\n", tput.ToAsciiChart().c_str());
    SeriesBundle lat("latency (ms)");
    lat.Insert("mean", r.latency_ms);
    lat.Insert("p99", r.latency_p99_ms);
    std::printf("%s\n", lat.ToAsciiChart(12, /*log_scale=*/true).c_str());
  }
  if (!csv.empty()) {
    Status s = bundle.WriteCsv(csv);
    if (!s.ok()) {
      std::fprintf(stderr, "csv: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", csv.c_str());
  }
  if (r.tracer != nullptr && r.critical_path.txns > 0) {
    const obs::CriticalPathBreakdown& cp = r.critical_path;
    const double per_txn = 1.0 / static_cast<double>(cp.txns);
    std::printf(
        "critical path, mean per traced txn (%llu traced): "
        "queued=%.2fms lock_wait=%.2fms execute=%.2fms prepare=%.2fms "
        "commit=%.2fms\n",
        static_cast<unsigned long long>(cp.txns),
        ToMillis(cp.queued) * per_txn, ToMillis(cp.lock_wait) * per_txn,
        ToMillis(cp.execute) * per_txn, ToMillis(cp.prepare) * per_txn,
        ToMillis(cp.commit) * per_txn);
  }
  if (!r.obs_export.ok()) {
    std::fprintf(stderr, "observability export: %s\n",
                 r.obs_export.ToString().c_str());
    return 1;
  }
  if (!config.obs.metrics_out.empty()) {
    std::printf("wrote %s\n", config.obs.metrics_out.c_str());
  }
  if (!config.obs.metrics_jsonl_out.empty()) {
    std::printf("wrote %s\n", config.obs.metrics_jsonl_out.c_str());
  }
  if (!config.obs.trace_out.empty() && r.tracer != nullptr) {
    std::printf("wrote %s\n", config.obs.trace_out.c_str());
  }
  if (!config.obs.audit_out.empty() && r.audit_log != nullptr) {
    std::printf("wrote %s\n", config.obs.audit_out.c_str());
  }
  if (!config.obs.timeline_out.empty() && r.timeline != nullptr) {
    std::printf("wrote %s\n", config.obs.timeline_out.c_str());
  }
  if (!config.check.history_out.empty() && r.check_enabled) {
    std::printf("wrote %s\n", config.check.history_out.c_str());
  }
  if (r.check_enabled && !r.check_report.ok()) return 1;
  return r.audit.ok() ? 0 : 1;
}
